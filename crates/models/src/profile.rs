//! Per-phase instrumentation for one training epoch.
//!
//! Propagation-based models spend their time in four places — negative
//! sampling, the once-per-epoch attention refresh, the propagation
//! forward pass, and backward/optimizer work — and the batch-local
//! subgraph engine changes the balance drastically. [`EpochProfile`]
//! captures wall time and work counters per phase so the bench harness
//! (`epoch_profile`) and the trainer's [`EpochLog`] can record a perf
//! trajectory across PRs.
//!
//! [`EpochLog`]: https://docs.rs/facility-eval

/// Wall-time and work counters for one epoch of training.
///
/// Times are nanoseconds. FLOP counts are *estimates* from closed-form
/// per-op formulas (dense matmul `2·m·k·n`, elementwise `m·n`, …), good
/// for relative comparisons rather than absolute hardware utilization.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochProfile {
    /// Time drawing BPR and TransR batches.
    pub sampling_ns: u64,
    /// Time refreshing per-edge attention weights (once per epoch).
    pub attention_ns: u64,
    /// Time building forward tapes (propagation + losses).
    pub forward_ns: u64,
    /// Time in backward passes (gradient computation only).
    pub backward_ns: u64,
    /// Time in optimizer updates (`ParamStore::apply` + lazy-row syncs).
    pub optimizer_ns: u64,
    /// **Aggregate extraction CPU**: time spent inside BFS subgraph
    /// extraction summed across *every* thread that extracted — the
    /// prefetch thread on the legacy path, the main thread in replica
    /// mode. Under concurrency this is CPU-seconds, not wall time (it can
    /// exceed `wall_ns`), so it measures redundant extraction *work* —
    /// the quantity the macro-step union extraction drives sublinear in
    /// the replica count. Cross-R comparisons of this field are
    /// apples-to-apples; for critical-path attribution use
    /// [`EpochProfile::extract_wall_ns`].
    pub extract_ns: u64,
    /// **Wall-attributed extraction**: extraction time that sat on the
    /// main thread's critical path — the once-per-macro-step union
    /// extraction in replica mode, or, on the prefetch batch-local path,
    /// the portion of each blocked `recv` covered by that batch's own
    /// extraction CPU (`min(blocked, extract)` per batch). 0 when
    /// extraction is fully overlapped by the prefetch thread. Part of
    /// [`EpochProfile::train_ns`].
    pub extract_wall_ns: u64,
    /// Time the main training thread spent **blocked waiting** on the
    /// prefetch channel *beyond* the batch's extraction CPU —
    /// channel/scheduling overhead, not extraction itself (which goes to
    /// [`EpochProfile::extract_wall_ns`]). It does *not* include work the
    /// main thread performed itself (sampling, remaps, union extraction):
    /// those are charged to their own fields. 0 in replica mode, where
    /// extraction happens on the main thread. Part of
    /// [`EpochProfile::train_ns`].
    pub extract_wait_ns: u64,
    /// Time computing the per-macro-step hub-representation cache (the
    /// full-graph forward over the frozen snapshot plus the per-layer row
    /// gathers). Main thread, replica mode with the hub cache on; 0
    /// otherwise. Part of [`EpochProfile::train_ns`].
    pub hub_cache_ns: u64,
    /// Time folding per-replica gradients into the macro-step gradient
    /// (main thread, replica mode only; 0 on the per-batch paths).
    pub reduce_ns: u64,
    /// End-to-end wall-clock time of the `train_epoch` call. Unlike
    /// [`EpochProfile::train_ns`] — a *sum of component times*, which
    /// under data-parallel replicas aggregates across workers and can
    /// exceed real time — this is the honest speedup denominator.
    pub wall_ns: u64,
    /// Replica workers used for this epoch (0 = legacy per-batch path).
    pub replicas: u64,
    /// Time spent in evaluation, when the caller evaluated this epoch
    /// (filled by the trainer, not the model).
    pub eval_ns: u64,
    /// Estimated forward-pass FLOPs over the whole epoch.
    pub forward_flops: u64,
    /// Embedding rows placed on the propagation tape, summed over batches.
    pub gathered_rows: u64,
    /// CKG edges propagated, summed over batches.
    pub gathered_edges: u64,
    /// Rows the full-graph path would have used (`n_entities · batches`).
    pub full_rows: u64,
    /// Edges the full-graph path would have used (`n_edges · batches`).
    pub full_edges: u64,
    /// Number of mini-batches this epoch.
    pub batches: u64,
}

impl EpochProfile {
    /// Fraction of full-graph rows actually gathered (1.0 when the model
    /// propagates over the whole graph; < 1.0 under batch-local mode).
    pub fn row_fraction(&self) -> f64 {
        if self.full_rows == 0 {
            1.0
        } else {
            self.gathered_rows as f64 / self.full_rows as f64
        }
    }

    /// Fraction of full-graph edges actually propagated.
    pub fn edge_fraction(&self) -> f64 {
        if self.full_edges == 0 {
            1.0
        } else {
            self.gathered_edges as f64 / self.full_edges as f64
        }
    }

    /// Total instrumented wall time (training phases only): sampling,
    /// attention refresh, forward, backward, optimizer, critical-path
    /// extraction ([`EpochProfile::extract_wall_ns`]), the hub-cache
    /// refresh, and any time blocked on subgraph prefetch. Aggregate
    /// extraction CPU ([`EpochProfile::extract_ns`]) is excluded — under
    /// concurrency it double-counts time that other fields already
    /// attribute to the critical path.
    pub fn train_ns(&self) -> u64 {
        self.sampling_ns
            + self.attention_ns
            + self.forward_ns
            + self.backward_ns
            + self.optimizer_ns
            + self.extract_wall_ns
            + self.extract_wait_ns
            + self.hub_cache_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_degrade_gracefully_on_empty_profiles() {
        let p = EpochProfile::default();
        assert_eq!(p.row_fraction(), 1.0);
        assert_eq!(p.edge_fraction(), 1.0);
        assert_eq!(p.train_ns(), 0);
    }

    #[test]
    fn fractions_reflect_counters() {
        let p = EpochProfile {
            gathered_rows: 25,
            full_rows: 100,
            gathered_edges: 10,
            full_edges: 40,
            ..Default::default()
        };
        assert_eq!(p.row_fraction(), 0.25);
        assert_eq!(p.edge_fraction(), 0.25);
    }

    #[test]
    fn train_ns_counts_wait_but_not_overlapped_extraction() {
        let p = EpochProfile {
            sampling_ns: 1,
            attention_ns: 2,
            forward_ns: 3,
            backward_ns: 4,
            optimizer_ns: 5,
            extract_ns: 1000,
            extract_wait_ns: 6,
            ..Default::default()
        };
        assert_eq!(p.train_ns(), 1 + 2 + 3 + 4 + 5 + 6);
    }

    #[test]
    fn train_ns_counts_wall_attributed_extraction_and_hub_cache() {
        // Replica-mode shape: union extraction + hub cache on the main
        // thread, no prefetch blocking, aggregate CPU reported separately.
        let p = EpochProfile {
            forward_ns: 10,
            backward_ns: 20,
            extract_ns: 9999,
            extract_wall_ns: 7,
            extract_wait_ns: 0,
            hub_cache_ns: 5,
            ..Default::default()
        };
        assert_eq!(p.train_ns(), 10 + 20 + 7 + 5);
    }
}
