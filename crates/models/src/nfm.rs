//! NFM — neural factorization machine (He & Chua 2017).
//!
//! audit: module unwrap — embedding rows are indexed by ids bounded at CKG
//! construction; the model parity/unit tests cover every lookup path.
//! NFM keeps FM's *vector-valued* bilinear pooling
//! `f_B = ½((Σ v_f)² − Σ v_f²)` (elementwise) and feeds it through one
//! hidden ReLU layer — the configuration the paper uses ("we employ one
//! hidden layer on input features", Section VI-C) — plus FM's linear term.

use crate::common::{ModelConfig, TrainContext};
use crate::fm::{fm_terms, FeatureBatch};
use crate::Recommender;
use facility_autograd::{Adam, ParamId, ParamStore, Tape, Var};
use facility_ckpt::{CkptError, ModelState};
use facility_kg::sampling::sample_bpr_batch;
use facility_kg::Id;
use facility_linalg::{init, seeded_rng, Matrix};
use rand::rngs::StdRng;

/// The NFM model.
pub struct Nfm {
    store: ParamStore,
    adam: Adam,
    w: ParamId,
    v: ParamId,
    /// Hidden layer `d → d`.
    w1: ParamId,
    b1: ParamId,
    /// Output projection `d → 1`.
    h: ParamId,
    config: ModelConfig,
    item_features: Vec<Vec<usize>>,
    n_users: usize,
    n_items: usize,
    cached_scores: Option<Matrix>,
}

impl Nfm {
    /// Initialize from the training context.
    pub fn new(ctx: &TrainContext<'_>, config: &ModelConfig) -> Self {
        let mut rng = seeded_rng(config.seed);
        let d = config.embed_dim;
        let n_ent = ctx.ckg.n_entities();
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(n_ent, 1));
        let v = store.add("v", init::xavier_uniform(n_ent, d, &mut rng));
        let w1 = store.add("w1", init::xavier_uniform(d, d, &mut rng));
        let b1 = store.add("b1", Matrix::zeros(1, d));
        let h = store.add("h", init::xavier_uniform(d, 1, &mut rng));
        let adam = Adam::default_for(&store, config.lr);
        let attrs = ctx.item_attribute_entities();
        let item_features: Vec<Vec<usize>> = (0..ctx.ckg.n_items)
            .map(|i| {
                let mut f = vec![ctx.ckg.item_entity(i as Id)];
                f.extend_from_slice(&attrs[i]);
                f
            })
            .collect();
        Self {
            store,
            adam,
            w,
            v,
            w1,
            b1,
            h,
            config: config.clone(),
            item_features,
            n_users: ctx.inter.n_users,
            n_items: ctx.inter.n_items,
            cached_scores: None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn batch_scores(
        &self,
        t: &mut Tape,
        params: (Var, Var, Var, Var, Var),
        users: &[usize],
        items: &[usize],
        keep_prob: f32,
        rng: Option<&mut StdRng>,
    ) -> Var {
        let (w, v, w1, b1, h) = params;
        let fb = FeatureBatch::build(users, items, &self.item_features);
        let (linear, bilinear_vec) = fm_terms(t, w, v, &fb);
        let pooled = match rng {
            Some(rng) if keep_prob < 1.0 => t.dropout(bilinear_vec, keep_prob, rng),
            _ => bilinear_vec,
        };
        let z = t.matmul(pooled, w1);
        let zb = t.add_broadcast_row(z, b1);
        let hid = t.relu(zb);
        let deep = t.matmul(hid, h); // (B × 1)
        t.add(linear, deep)
    }
}

impl Recommender for Nfm {
    fn name(&self) -> String {
        "NFM".into()
    }

    fn train_epoch(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32 {
        let n_batches = ctx.batches_per_epoch(self.config.batch_size);
        let mut total = 0.0;
        for _ in 0..n_batches {
            let batch = sample_bpr_batch(ctx.inter, self.config.batch_size, rng);
            if batch.is_empty() {
                return 0.0;
            }
            let users: Vec<usize> = batch.iter().map(|s| s.user as usize).collect();
            let pos: Vec<usize> = batch.iter().map(|s| s.pos as usize).collect();
            let neg: Vec<usize> = batch.iter().map(|s| s.neg as usize).collect();

            let mut t = Tape::new();
            let w = t.leaf(self.store.value(self.w).clone());
            let v = t.leaf(self.store.value(self.v).clone());
            let w1 = t.leaf(self.store.value(self.w1).clone());
            let b1 = t.leaf(self.store.value(self.b1).clone());
            let h = t.leaf(self.store.value(self.h).clone());
            let kp = self.config.keep_prob;
            let y_pos = self.batch_scores(&mut t, (w, v, w1, b1, h), &users, &pos, kp, Some(rng));
            let y_neg = self.batch_scores(&mut t, (w, v, w1, b1, h), &users, &neg, kp, Some(rng));
            let diff = t.sub(y_pos, y_neg);
            let ls = t.log_sigmoid(diff);
            let s = t.sum_all(ls);
            let bpr = t.scale(s, -1.0 / batch.len() as f32);
            let rv = t.frobenius_sq(v);
            let rw1 = t.frobenius_sq(w1);
            let reg0 = t.add(rv, rw1);
            let reg = t.scale(reg0, self.config.l2);
            let loss = t.add(bpr, reg);
            total += t.value(loss)[(0, 0)];
            t.backward(loss);
            let grads: Vec<_> =
                [(self.w, w), (self.v, v), (self.w1, w1), (self.b1, b1), (self.h, h)]
                    .into_iter()
                    .filter_map(|(p, var)| t.take_grad(var).map(|g| (p, g.into())))
                    .collect();
            self.store.apply(&mut self.adam, &grads);
        }
        self.cached_scores = None;
        total / n_batches as f32
    }

    fn prepare_eval(&mut self, _ctx: &TrainContext<'_>) {
        use rayon::prelude::*;
        let all_items: Vec<usize> = (0..self.n_items).collect();
        let rows: Vec<Vec<f32>> = (0..self.n_users)
            .into_par_iter()
            .map(|u| {
                let users = vec![u; self.n_items];
                let mut t = Tape::new();
                let w = t.constant(self.store.value(self.w).clone());
                let v = t.constant(self.store.value(self.v).clone());
                let w1 = t.constant(self.store.value(self.w1).clone());
                let b1 = t.constant(self.store.value(self.b1).clone());
                let h = t.constant(self.store.value(self.h).clone());
                // No dropout at inference.
                let y = self.batch_scores(&mut t, (w, v, w1, b1, h), &users, &all_items, 1.0, None);
                t.value(y).as_slice().to_vec()
            })
            .collect();
        let mut scores = Matrix::zeros(self.n_users, self.n_items);
        for (u, row) in rows.into_iter().enumerate() {
            scores.row_mut(u).copy_from_slice(&row);
        }
        self.cached_scores = Some(scores);
    }

    fn score_items(&self, user: Id) -> Vec<f32> {
        self.cached_scores.as_ref().expect("prepare_eval not called").row(user as usize).to_vec()
    }

    fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn save_state(&self) -> ModelState {
        ModelState::capture(&self.store, &self.adam)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CkptError> {
        state.restore(&mut self.store, &mut self.adam)?;
        self.cached_scores = None;
        Ok(())
    }

    fn scale_lr(&mut self, factor: f32) {
        self.adam.lr *= factor;
    }

    fn params_finite(&mut self) -> bool {
        self.store.touched_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{auc, toy_world};

    #[test]
    fn nfm_learns_toy_world() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut cfg = ModelConfig::fast();
        cfg.keep_prob = 1.0; // tiny data — dropout only adds noise here
        let mut model = Nfm::new(&ctx, &cfg);
        let mut rng = seeded_rng(1);
        let first = model.train_epoch(&ctx, &mut rng);
        let mut last = first;
        for _ in 0..50 {
            last = model.train_epoch(&ctx, &mut rng);
        }
        assert!(last < first, "NFM loss should fall: {first} -> {last}");
        model.prepare_eval(&ctx);
        let a = auc(&model, &inter);
        assert!(a > 0.7, "NFM AUC {a}");
    }

    #[test]
    fn dropout_changes_training_but_not_eval() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut cfg = ModelConfig::fast();
        cfg.keep_prob = 0.5;
        let mut model = Nfm::new(&ctx, &cfg);
        let mut rng = seeded_rng(2);
        model.train_epoch(&ctx, &mut rng);
        // Eval path is deterministic (no dropout): two prepares agree.
        model.prepare_eval(&ctx);
        let a = model.score_items(0);
        model.prepare_eval(&ctx);
        let b = model.score_items(0);
        assert_eq!(a, b);
    }
}
