//! CKE — collaborative knowledge-base embedding (Zhang et al. 2016),
//! regularization-based baseline.
//! audit: module unwrap — embedding rows are indexed by ids bounded at CKG
//! construction; the model parity/unit tests cover every lookup path.
//!
//! The item representation is the sum of a free CF latent vector and the
//! item's structural TransR entity embedding: `ŷ(u,v) = e_uᵀ(γ_v + e_v)`.
//! Training alternates the BPR ranking loss with the TransR margin loss on
//! the CKG (this is the "regularization" — the KG pulls item embeddings
//! toward their structural neighbors, but no propagation happens).

use crate::common::{dot_scores, ModelConfig, TrainContext};
use crate::transr;
use crate::Recommender;
use facility_autograd::{Adam, ParamId, ParamStore, Tape};
use facility_ckpt::{CkptError, ModelState};
use facility_kg::sampling::{sample_bpr_batch, sample_kg_batch};
use facility_kg::Id;
use facility_linalg::{init, seeded_rng, Matrix};
use rand::rngs::StdRng;

/// The CKE model.
pub struct Cke {
    store: ParamStore,
    adam: Adam,
    user_emb: ParamId,
    item_emb: ParamId,
    /// TransR entity table over all CKG entities.
    ent_emb: ParamId,
    rel_emb: ParamId,
    rel_proj: ParamId,
    config: ModelConfig,
    margin: f32,
    n_items: usize,
    n_rel: usize,
    cached_users: Option<Matrix>,
    cached_items: Option<Matrix>,
}

impl Cke {
    /// Initialize from the training context.
    pub fn new(ctx: &TrainContext<'_>, config: &ModelConfig) -> Self {
        let mut rng = seeded_rng(config.seed);
        let d = config.embed_dim;
        let n_ent = ctx.ckg.n_entities();
        let n_rel = ctx.ckg.n_relations_with_inverse();
        let mut store = ParamStore::new();
        let user_emb = store.add("user_emb", init::xavier_uniform(ctx.inter.n_users, d, &mut rng));
        let item_emb = store.add("item_emb", init::xavier_uniform(ctx.inter.n_items, d, &mut rng));
        let ent_emb = store.add("ent_emb", init::xavier_uniform(n_ent, d, &mut rng));
        let rel_emb = store.add("rel_emb", init::xavier_uniform(n_rel, d, &mut rng));
        let rel_proj = store.add("rel_proj", init::xavier_uniform(n_rel * d, d, &mut rng));
        let adam = Adam::default_for(&store, config.lr);
        Self {
            store,
            adam,
            user_emb,
            item_emb,
            ent_emb,
            rel_emb,
            rel_proj,
            config: config.clone(),
            margin: 1.0,
            n_items: ctx.inter.n_items,
            n_rel,
            cached_users: None,
            cached_items: None,
        }
    }

    /// Items' combined representation `γ_v + e_v` from current parameters.
    fn combined_items(&self, ctx: &TrainContext<'_>) -> Matrix {
        let item_rows: Vec<usize> =
            (0..self.n_items).map(|i| ctx.ckg.item_entity(i as Id)).collect();
        let structural = self.store.value(self.ent_emb).gather_rows(&item_rows);
        self.store.value(self.item_emb).add(&structural)
    }
}

impl Recommender for Cke {
    fn name(&self) -> String {
        "CKE".into()
    }

    fn train_epoch(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32 {
        let n_batches = ctx.batches_per_epoch(self.config.batch_size);
        let d = self.config.embed_dim;
        let mut total = 0.0;
        for _ in 0..n_batches {
            // --- BPR phase ---
            let batch = sample_bpr_batch(ctx.inter, self.config.batch_size, rng);
            if batch.is_empty() {
                return 0.0;
            }
            let users: Vec<usize> = batch.iter().map(|s| s.user as usize).collect();
            let pos: Vec<usize> = batch.iter().map(|s| s.pos as usize).collect();
            let neg: Vec<usize> = batch.iter().map(|s| s.neg as usize).collect();
            let pos_ent: Vec<usize> = batch.iter().map(|s| ctx.ckg.item_entity(s.pos)).collect();
            let neg_ent: Vec<usize> = batch.iter().map(|s| ctx.ckg.item_entity(s.neg)).collect();

            let mut t = Tape::new();
            let uemb = t.leaf(self.store.value(self.user_emb).clone());
            let vemb = t.leaf(self.store.value(self.item_emb).clone());
            let eemb = t.leaf(self.store.value(self.ent_emb).clone());
            let u = t.gather_rows(uemb, &users);
            let vi = t.gather_rows(vemb, &pos);
            let ei = t.gather_rows(eemb, &pos_ent);
            let vj = t.gather_rows(vemb, &neg);
            let ej = t.gather_rows(eemb, &neg_ent);
            let i_rep = t.add(vi, ei);
            let j_rep = t.add(vj, ej);
            let y_pos = t.rowwise_dot(u, i_rep);
            let y_neg = t.rowwise_dot(u, j_rep);
            let diff = t.sub(y_pos, y_neg);
            let ls = t.log_sigmoid(diff);
            let s = t.sum_all(ls);
            let bpr = t.scale(s, -1.0 / batch.len() as f32);
            let ru = t.frobenius_sq(u);
            let ri = t.frobenius_sq(i_rep);
            let rj = t.frobenius_sq(j_rep);
            let reg0 = t.add(ru, ri);
            let reg1 = t.add(reg0, rj);
            let reg = t.scale(reg1, self.config.l2 / batch.len() as f32);
            let loss = t.add(bpr, reg);
            total += t.value(loss)[(0, 0)];
            t.backward(loss);
            let grads: Vec<_> =
                [(self.user_emb, uemb), (self.item_emb, vemb), (self.ent_emb, eemb)]
                    .into_iter()
                    .filter_map(|(p, var)| t.take_grad(var).map(|g| (p, g.into())))
                    .collect();
            self.store.apply(&mut self.adam, &grads);

            // --- TransR phase ---
            let kg_batch = sample_kg_batch(ctx.ckg, self.config.batch_size, rng);
            if !kg_batch.is_empty() {
                let mut t = Tape::new();
                let eemb = t.leaf(self.store.value(self.ent_emb).clone());
                let remb = t.leaf(self.store.value(self.rel_emb).clone());
                let rproj = t.leaf(self.store.value(self.rel_proj).clone());
                let loss = transr::margin_loss(
                    &mut t,
                    eemb,
                    remb,
                    rproj,
                    d,
                    self.n_rel,
                    &kg_batch,
                    self.margin,
                );
                total += t.value(loss)[(0, 0)];
                t.backward(loss);
                let grads: Vec<_> =
                    [(self.ent_emb, eemb), (self.rel_emb, remb), (self.rel_proj, rproj)]
                        .into_iter()
                        .filter_map(|(p, var)| t.take_grad(var).map(|g| (p, g.into())))
                        .collect();
                self.store.apply(&mut self.adam, &grads);
            }
        }
        self.cached_users = None;
        self.cached_items = None;
        total / n_batches as f32
    }

    fn prepare_eval(&mut self, ctx: &TrainContext<'_>) {
        self.cached_users = Some(self.store.value(self.user_emb).clone());
        self.cached_items = Some(self.combined_items(ctx));
    }

    fn score_items(&self, user: Id) -> Vec<f32> {
        dot_scores(
            self.cached_users.as_ref().expect("prepare_eval not called"),
            self.cached_items.as_ref().expect("prepare_eval not called"),
            user,
        )
    }

    fn eval_matrices(&self) -> Option<(&Matrix, &Matrix)> {
        self.cached_users.as_ref().zip(self.cached_items.as_ref())
    }

    fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn save_state(&self) -> ModelState {
        ModelState::capture(&self.store, &self.adam)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CkptError> {
        state.restore(&mut self.store, &mut self.adam)?;
        self.cached_users = None;
        self.cached_items = None;
        Ok(())
    }

    fn scale_lr(&mut self, factor: f32) {
        self.adam.lr *= factor;
    }

    fn params_finite(&mut self) -> bool {
        self.store.touched_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{auc, toy_world};

    #[test]
    fn cke_learns_toy_world() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Cke::new(&ctx, &ModelConfig::fast());
        let mut rng = seeded_rng(1);
        let first = model.train_epoch(&ctx, &mut rng);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_epoch(&ctx, &mut rng);
        }
        assert!(last < first, "CKE loss should fall: {first} -> {last}");
        model.prepare_eval(&ctx);
        let a = auc(&model, &inter);
        assert!(a > 0.7, "CKE AUC {a}");
    }

    #[test]
    fn combined_item_reps_depend_on_entity_table() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Cke::new(&ctx, &ModelConfig::fast());
        model.prepare_eval(&ctx);
        let before = model.score_items(0);
        // Shift the entity table — scores must change.
        model.store.value_mut(model.ent_emb).map_assign(|x| x + 0.5);
        model.prepare_eval(&ctx);
        let after = model.score_items(0);
        assert_ne!(before, after);
    }
}
