//! CKAT — the collaborative knowledge-aware graph attention network, the
//! paper's primary contribution (Section V).
//! audit: module unwrap — embedding rows are indexed by ids bounded at CKG
//! construction; the model parity/unit tests cover every lookup path.
//!
//! Three components:
//!
//! 1. **Embedding layer** — TransR entity/relation embeddings trained with
//!    the margin loss `L₁` (Eqs. 1–2).
//! 2. **Knowledge-aware attentive embedding propagation** — `L` layers
//!    that aggregate each entity's neighborhood, weighted by the
//!    relational attention `f_a(h,r,t) = (W_r e_t)ᵀ tanh(W_r e_h + e_r)`
//!    normalized per neighborhood (Eqs. 3–5), with a *concat* or *sum*
//!    aggregator (Eqs. 6–7) and message dropout.
//! 3. **Prediction layer** — layer representations are concatenated
//!    (Eq. 10) and scored by inner product (Eq. 11); training uses BPR
//!    (Eq. 12) plus L2 (Eq. 13).
//!
//! Implementation note: as in the reference KGAT implementation this model
//! family builds on, the attention weights over the full CKG are
//! *refreshed once per epoch* (forward-only) and held constant inside each
//! mini-batch; the attention parameters (`W_r`, `e_r`) learn through the
//! TransR objective, and everything else backpropagates through the
//! propagation stack. The "w/o Att" ablation of Table IV replaces the
//! attention with uniform `1/|N_h|` weights.
//!
//! ## Batch-local subgraph propagation, sparse gradients, and prefetch
//!
//! Training only ever reads the final representations of the batch's
//! users/items, whose `L`-layer receptive field is the batch seeds' L-hop
//! in-neighborhood — usually a small fraction of the CKG. With
//! [`CkatConfig::batch_local`] (the default) each mini-batch extracts that
//! receptive field as a compact remapped CSR subgraph
//! ([`facility_kg::SubgraphScratch`]) and runs the propagation stack over
//! it, so every intermediate activation and its gradient are
//! O(subgraph) instead of O(graph). Three further optimizations ride on
//! that structure:
//!
//! * **Sparse embedding gradients** — the entity matrix enters the tape
//!   as a [`Tape::gather_leaf`] over exactly the subgraph rows, so
//!   backward produces a row-sparse gradient
//!   ([`facility_autograd::SparseRowGrad`]) and never materializes an
//!   `n_entities × d` buffer. The TransR phase does the same over the
//!   KG batch's head/tail/corrupt-tail union.
//! * **Lazy Adam** — sparse gradients step only the touched rows;
//!   untouched rows defer their zero-gradient moment decay until the next
//!   time they are read ([`ParamStore::sync_rows`] /
//!   [`ParamStore::sync_all`]), which replays the skipped steps exactly.
//! * **Double-buffered extraction** — a scoped worker thread extracts
//!   batch `b+1`'s receptive field while the main thread trains batch
//!   `b`, handing subgraphs over a bounded channel; all mini-batches are
//!   drawn up front (in the same RNG order as inline sampling) so the
//!   worker knows every seed set.
//!
//! Because the subgraph preserves the global CSR accumulation order
//! (interior nodes sorted by global id, full edge slices copied
//! verbatim), and lazy Adam's catch-up replays the exact per-step update
//! recurrence, the batch-local path remains **bitwise identical** to
//! full-graph propagation with dense Adam whenever dropout is off.
//! Full-graph propagation remains the evaluation path and the
//! differential-test oracle (`tests/batch_local_diff.rs`).
//!
//! ## Replica mode: shared macro-step extraction + hub-representation cache
//!
//! Replica training (`base.replicas ≥ 1`, see `crate::replica`) batches
//! [`MACRO_WIDTH`] micro-batches per optimizer step, and their receptive
//! fields overlap heavily — each re-walks the same high-degree
//! neighborhoods. Two structures remove that redundancy without changing
//! the schedule:
//!
//! * **Union extraction** — one [`SubgraphScratch::extract_many`] BFS
//!   extracts the union receptive field of all seed sets per macro-step;
//!   each batch's [`BatchSubgraph`] is then derived by local-id remap, and
//!   is bitwise-identical to what an independent extraction would build
//!   (proven in `tests/batch_local_diff.rs`). Aggregate extraction CPU
//!   stops scaling with the replica count.
//! * **Hub-representation cache** ([`CkatConfig::hub_cache`]) — entities
//!   above the [`CkatConfig::hub_percentile`] out-degree threshold get
//!   their per-layer outputs computed once per macro-step by a full-graph
//!   forward against the frozen snapshot ([`HubReps`], invalidated by the
//!   `param_version`/`att_epoch` stamps). Inside each batch tape the hub
//!   rows are replaced with those cached values after every layer's
//!   normalization ([`Tape::override_rows`] — a stop-gradient: hubs keep
//!   learning through the layer-0 gather and TransR), and the union BFS
//!   treats hubs as *cut* nodes whose neighborhoods are never extracted.
//!   Cached hub values equal the values their full neighborhoods would
//!   produce, so the first macro-step is bitwise-identical to the
//!   uncached path, and whole runs stay bitwise-identical across replica
//!   counts. The uncached path (`hub_cache: false`) remains the
//!   eval/test oracle.
//!
//! [`Tape::override_rows`]: facility_autograd::Tape::override_rows

use crate::common::{dedup_seeds, dot_scores, union_locals, ModelConfig, TrainContext};
use crate::profile::EpochProfile;
use crate::replica::{batch_rng, pooled_map, MACRO_WIDTH};
use crate::transr;
use crate::Recommender;
use facility_autograd::{fold_grads_ordered, Adam, Grad, ParamId, ParamStore, Tape, Var};
use facility_ckpt::{CkptError, ModelState};
use facility_kg::sampling::{sample_bpr_batch, sample_kg_batch, BprSample, KgSample};
use facility_kg::{BatchSubgraph, Ckg, Id, SubgraphScratch};
use facility_linalg::{init, seeded_rng, Matrix};
use rand::rngs::StdRng;
use rand::RngCore;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Neighborhood aggregation variants (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregator {
    /// `LeakyReLU(W (e_h ‖ e_{N_h}))` — the paper's default (Eq. 6).
    Concat,
    /// `LeakyReLU(W (e_h + e_{N_h}))` (Eq. 7).
    Sum,
}

/// CKAT hyperparameters.
#[derive(Debug, Clone)]
pub struct CkatConfig {
    /// Shared hyperparameters.
    pub base: ModelConfig,
    /// Output dimension of each propagation layer (paper: `[64, 32, 16]`,
    /// depth `L = 3`).
    pub layer_dims: Vec<usize>,
    /// Knowledge-aware attention on/off (Table IV ablation).
    pub use_attention: bool,
    /// Aggregator choice (Table IV ablation).
    pub aggregator: Aggregator,
    /// TransR relation-space dimension `k`.
    pub transr_dim: usize,
    /// TransR margin `γ`.
    pub margin: f32,
    /// Propagate over the batch's L-hop receptive field instead of the
    /// full CKG during training (numerically identical; see module docs).
    pub batch_local: bool,
    /// Replica mode only: compute the layer-stack outputs of hub entities
    /// (degree above [`CkatConfig::hub_percentile`]) once per macro-step
    /// against the frozen snapshot and reuse them across the macro-step's
    /// micro-batches. Hubs stop participating in BFS expansion (their
    /// closure-exploding neighborhoods are never re-extracted) and their
    /// deep-layer values become stop-gradient constants inside each batch
    /// tape; they keep learning through the layer-0 embedding gather and
    /// the TransR objective. The uncached path remains the eval/test
    /// oracle.
    pub hub_cache: bool,
    /// Out-degree percentile above which an entity counts as a hub
    /// (strictly above the percentile value). `>= 1.0` marks no hubs,
    /// which disables the cache regardless of [`CkatConfig::hub_cache`].
    pub hub_percentile: f32,
}

impl From<&ModelConfig> for CkatConfig {
    fn from(base: &ModelConfig) -> Self {
        let d = base.embed_dim;
        Self {
            base: base.clone(),
            layer_dims: vec![d, d / 2, d / 4],
            use_attention: true,
            aggregator: Aggregator::Concat,
            transr_dim: d,
            margin: 1.0,
            batch_local: true,
            hub_cache: true,
            hub_percentile: 0.99,
        }
    }
}

impl CkatConfig {
    /// Depth `L` (number of propagation layers).
    pub fn depth(&self) -> usize {
        self.layer_dims.len()
    }

    /// Total dimension of the final concatenated representation (Eq. 10).
    pub fn final_dim(&self) -> usize {
        self.base.embed_dim + self.layer_dims.iter().sum::<usize>()
    }
}

/// The CKAT model.
pub struct Ckat {
    store: ParamStore,
    adam: Adam,
    ent_emb: ParamId,
    rel_emb: ParamId,
    rel_proj: ParamId,
    layer_w: Vec<ParamId>,
    layer_b: Vec<ParamId>,
    config: CkatConfig,
    n_users: usize,
    n_entities: usize,
    n_rel: usize,
    /// CKG edge tails as gather indices (CSR order).
    tails: Arc<Vec<usize>>,
    /// CKG edge heads as segment ids (CSR order).
    heads: Arc<Vec<usize>>,
    /// Item entity ids, contiguous (`n_users..n_users+n_items`).
    item_entities: Vec<usize>,
    /// Attention weight per edge, refreshed once per epoch.
    att: Vec<f32>,
    att_fresh: bool,
    cached_users: Option<Matrix>,
    cached_items: Option<Matrix>,
    /// Reusable arena for per-batch and macro-step receptive-field
    /// extraction (always on the thread that owns `&mut self`).
    scratch: SubgraphScratch,
    /// `hub_flags[g]` — entity `g`'s out-degree is strictly above the
    /// [`CkatConfig::hub_percentile`] degree threshold. Empty when the hub
    /// cache is off.
    hub_flags: Vec<bool>,
    /// The hub entity ids, strictly increasing (the row order of
    /// [`HubReps::layers`]).
    hub_ids: Arc<Vec<usize>>,
    /// Per-macro-step cache of the hubs' layer-stack outputs; stamped with
    /// the parameter/attention versions it was computed against.
    hub_cache: Option<HubReps>,
    /// Bumped after every optimizer apply; invalidates [`Ckat::hub_cache`].
    param_version: u64,
    /// Bumped by [`Ckat::refresh_attention`]; invalidates
    /// [`Ckat::hub_cache`].
    att_epoch: u64,
    /// Instrumentation from the most recent epoch, consumed by
    /// [`Recommender::take_epoch_profile`].
    last_profile: Option<EpochProfile>,
}

/// Layer-stack outputs of every hub entity, computed once per macro-step
/// by a full-graph forward pass against the frozen parameter snapshot.
///
/// `layers[l]` is `hub_ids.len() × layer_dims[l]`: row `i` holds the
/// *normalized* layer-`l` output of `hub_ids[i]` — exactly the rows a
/// batch-local pass would compute for those entities, because per-row ops
/// (matmul, bias, LeakyReLU, row normalization) and the verbatim-copied
/// CSR edge slices make layer outputs independent of which other rows
/// share the subgraph.
struct HubReps {
    /// [`Ckat::param_version`] this cache was computed against.
    param_version: u64,
    /// [`Ckat::att_epoch`] this cache was computed against.
    att_epoch: u64,
    layers: Vec<Matrix>,
}

/// Per-batch view of the hub cache: the hub rows present in one batch
/// subgraph, remapped to local row indices, with their cached per-layer
/// values ready for [`Tape::override_rows`].
struct HubOverride {
    /// Local row indices of hub nodes in the batch subgraph, strictly
    /// increasing (subgraph locals are assigned in traversal order, so
    /// scanning `sub.nodes` in order yields sorted locals).
    locals: Arc<Vec<usize>>,
    /// `layers[l]`: `locals.len() × layer_dims[l]` cached values.
    layers: Vec<Matrix>,
}

/// Mark every entity whose out-degree is strictly above the
/// `hub_percentile` quantile of the degree distribution. Returns
/// `(flags, ids)` with `ids` strictly increasing; both empty when the hub
/// cache is off or the percentile admits no hubs.
fn select_hubs(ckg: &Ckg, config: &CkatConfig) -> (Vec<bool>, Vec<usize>) {
    let n = ckg.n_entities();
    // `>= 1.0` disables via the percentile; NaN disables too (a NaN
    // percentile is nonsense, so fail toward the exact uncached path).
    let enabled = config.hub_cache && config.hub_percentile < 1.0;
    if !enabled || n == 0 {
        return (Vec::new(), Vec::new());
    }
    let degrees: Vec<usize> = (0..n).map(|g| ckg.offsets[g + 1] - ckg.offsets[g]).collect();
    let mut sorted = degrees.clone();
    sorted.sort_unstable();
    let q = (f64::from(config.hub_percentile.max(0.0)) * (n - 1) as f64).floor() as usize;
    let threshold = sorted[q.min(n - 1)];
    let flags: Vec<bool> = degrees.iter().map(|&d| d > threshold).collect();
    let ids: Vec<usize> = (0..n).filter(|&g| flags[g]).collect();
    if ids.is_empty() {
        (Vec::new(), Vec::new())
    } else {
        (flags, ids)
    }
}

impl Ckat {
    /// Initialize from the training context.
    pub fn new(ctx: &TrainContext<'_>, config: &CkatConfig) -> Self {
        assert!(!config.layer_dims.is_empty(), "CKAT needs at least one propagation layer");
        let mut rng = seeded_rng(config.base.seed);
        let d = config.base.embed_dim;
        let k = config.transr_dim;
        let n_ent = ctx.ckg.n_entities();
        let n_rel = ctx.ckg.n_relations_with_inverse();
        let mut store = ParamStore::new();
        let ent_emb = store.add("ent_emb", init::xavier_uniform(n_ent, d, &mut rng));
        let rel_emb = store.add("rel_emb", init::xavier_uniform(n_rel, k, &mut rng));
        let rel_proj = store.add("rel_proj", init::xavier_uniform(n_rel * d, k, &mut rng));
        let mut layer_w = Vec::new();
        let mut layer_b = Vec::new();
        let mut in_dim = d;
        for (l, &out_dim) in config.layer_dims.iter().enumerate() {
            let rows = match config.aggregator {
                Aggregator::Concat => 2 * in_dim,
                Aggregator::Sum => in_dim,
            };
            layer_w.push(store.add(format!("w{l}"), init::xavier_uniform(rows, out_dim, &mut rng)));
            layer_b.push(store.add(format!("b{l}"), Matrix::zeros(1, out_dim)));
            in_dim = out_dim;
        }
        let adam = Adam::default_for(&store, config.base.lr);
        let tails: Arc<Vec<usize>> = Arc::new(ctx.ckg.tails.iter().map(|&t| t as usize).collect());
        let heads: Arc<Vec<usize>> = Arc::new(ctx.ckg.heads.iter().map(|&h| h as usize).collect());
        let item_entities: Vec<usize> =
            (0..ctx.inter.n_items).map(|i| ctx.ckg.item_entity(i as Id)).collect();
        let (hub_flags, hub_ids) = select_hubs(ctx.ckg, config);
        Self {
            store,
            adam,
            ent_emb,
            rel_emb,
            rel_proj,
            layer_w,
            layer_b,
            config: config.clone(),
            n_users: ctx.inter.n_users,
            n_entities: n_ent,
            n_rel,
            tails,
            heads,
            item_entities,
            att: Vec::new(),
            att_fresh: false,
            cached_users: None,
            cached_items: None,
            scratch: SubgraphScratch::new(n_ent),
            hub_flags,
            hub_ids: Arc::new(hub_ids),
            hub_cache: None,
            param_version: 0,
            att_epoch: 0,
            last_profile: None,
        }
    }

    /// Warm-start constructor for incremental CKG growth (the paper's
    /// Section VI-F limitation: "when the facility adds new instruments or
    /// data objects, the fine-tuning process needs to be repeated").
    ///
    /// `entity_map[new_entity] = Some(old_entity)` copies the previous
    /// model's embedding row for entities that survived the graph update;
    /// `None` rows keep their fresh Xavier initialization. Layer weights
    /// are copied whenever shapes match (same config => always).
    pub fn new_warm(
        ctx: &TrainContext<'_>,
        config: &CkatConfig,
        previous: &Ckat,
        entity_map: &[Option<usize>],
    ) -> Self {
        let mut model = Self::new(ctx, config);
        assert_eq!(
            entity_map.len(),
            ctx.ckg.n_entities(),
            "entity_map must cover every new entity"
        );
        let prev_emb = previous.store.value(previous.ent_emb);
        assert_eq!(
            prev_emb.cols(),
            config.base.embed_dim,
            "warm start requires matching embedding width"
        );
        let emb = model.store.value_mut(model.ent_emb);
        for (new_e, old) in entity_map.iter().enumerate() {
            if let Some(old_e) = old {
                emb.set_row(new_e, prev_emb.row(*old_e));
            }
        }
        for (dst, src) in model.layer_w.iter().zip(&previous.layer_w) {
            if previous.store.value(*src).shape() == model.store.value(*dst).shape() {
                let v = previous.store.value(*src).clone();
                *model.store.value_mut(*dst) = v;
            }
        }
        for (dst, src) in model.layer_b.iter().zip(&previous.layer_b) {
            if previous.store.value(*src).shape() == model.store.value(*dst).shape() {
                let v = previous.store.value(*src).clone();
                *model.store.value_mut(*dst) = v;
            }
        }
        // Relation parameters survive a graph update whenever the relation
        // vocabulary and TransR dimension are unchanged — dropping them
        // silently re-randomized the attention mechanism on warm start.
        for (dst, src) in [(model.rel_emb, previous.rel_emb), (model.rel_proj, previous.rel_proj)] {
            if previous.store.value(src).shape() == model.store.value(dst).shape() {
                let v = previous.store.value(src).clone();
                *model.store.value_mut(dst) = v;
            }
        }
        // Whatever attention snapshot the previous model held was computed
        // on the old graph; the warm model must refresh before eval.
        model.att_fresh = false;
        model
    }

    /// Recompute the per-edge attention weights from current parameters
    /// (Eqs. 4–5), or uniform weights for the ablation.
    fn refresh_attention(&mut self, ctx: &TrainContext<'_>) {
        self.att = if self.config.use_attention {
            transr::attention_scores(
                ctx.ckg,
                self.store.value(self.ent_emb),
                self.store.value(self.rel_emb),
                self.store.value(self.rel_proj),
            )
        } else {
            transr::uniform_scores(ctx.ckg)
        };
        self.att_fresh = true;
        // Any hub representations cached against the previous attention
        // snapshot are stale from here on.
        self.att_epoch += 1;
    }

    /// Build the full propagation stack on `t` and return the final
    /// concatenated representation of every entity (Eqs. 3, 6–10).
    fn propagate(
        &self,
        t: &mut Tape,
        ent: Var,
        layer_w: &[Var],
        layer_b: &[Var],
        dropout_rng: Option<&mut StdRng>,
    ) -> Var {
        assert!(!self.att.is_empty(), "attention not refreshed");
        let att = t.constant(Matrix::from_vec(self.att.len(), 1, self.att.clone()));
        propagate_over(
            &self.config,
            t,
            ent,
            att,
            Arc::clone(&self.tails),
            Arc::clone(&self.heads),
            self.n_entities,
            layer_w,
            layer_b,
            dropout_rng,
            None,
        )
    }

    /// Forward-only final representations of **all** entities (users,
    /// items, attributes), `n_entities × final_dim` — the concatenated
    /// multi-order embeddings of Eq. 10. Useful for exporting embeddings
    /// or downstream clustering. Requires fresh attention
    /// ([`Ckat::train_epoch`] or [`Ckat::prepare_eval`] refresh it).
    pub fn entity_representations(&self) -> Matrix {
        self.final_representations()
    }

    /// The current per-edge attention weights in CKG CSR edge order
    /// (empty before the first refresh).
    pub fn attention_weights(&self) -> &[f32] {
        &self.att
    }

    /// Number of entities the hub-representation cache tracks (0 when
    /// [`CkatConfig::hub_cache`] is off or the percentile admits none).
    pub fn hub_count(&self) -> usize {
        self.hub_ids.len()
    }

    /// Clones of the per-layer aggregation weights and biases (`W_l`,
    /// `b_l`), for inspection and differential testing.
    pub fn layer_parameters(&self) -> (Vec<Matrix>, Vec<Matrix>) {
        (
            self.layer_w.iter().map(|&p| self.store.value(p).clone()).collect(),
            self.layer_b.iter().map(|&p| self.store.value(p).clone()).collect(),
        )
    }

    /// Forward-only final representations (used for evaluation).
    fn final_representations(&self) -> Matrix {
        let mut t = Tape::new();
        let ent = t.constant(self.store.value(self.ent_emb).clone());
        let lw: Vec<Var> =
            self.layer_w.iter().map(|&p| t.constant(self.store.value(p).clone())).collect();
        let lb: Vec<Var> =
            self.layer_b.iter().map(|&p| t.constant(self.store.value(p).clone())).collect();
        let all = self.propagate(&mut t, ent, &lw, &lb, None);
        t.value(all).clone()
    }

    /// Full-graph training arm: dense leaves, dense gradients, dense Adam
    /// steps. Deliberately untouched by the sparse/lazy machinery — it is
    /// the differential oracle the batch-local path is tested against.
    fn run_batches_full(
        &mut self,
        ctx: &TrainContext<'_>,
        batches: &[(Vec<BprSample>, Vec<KgSample>)],
        rng: &mut StdRng,
        prof: &mut EpochProfile,
    ) -> f32 {
        let d = self.config.base.embed_dim;
        let full_edges = ctx.ckg.n_edges() as u64;
        let mut total = 0.0;
        for (batch, kg_batch) in batches {
            prof.batches += 1;
            prof.full_rows += self.n_entities as u64;
            prof.full_edges += full_edges;
            prof.gathered_rows += self.n_entities as u64;
            prof.gathered_edges += full_edges;
            prof.forward_flops +=
                propagation_flops(&self.config, self.n_entities as u64, full_edges);
            let users: Vec<usize> = batch.iter().map(|s| s.user as usize).collect();
            let pos: Vec<usize> = batch.iter().map(|s| ctx.ckg.item_entity(s.pos)).collect();
            let neg: Vec<usize> = batch.iter().map(|s| ctx.ckg.item_entity(s.neg)).collect();

            let clock = Instant::now();
            let mut t = Tape::new();
            let ent = t.leaf(self.store.value(self.ent_emb).clone());
            let lw: Vec<Var> =
                self.layer_w.iter().map(|&p| t.leaf(self.store.value(p).clone())).collect();
            let lb: Vec<Var> =
                self.layer_b.iter().map(|&p| t.leaf(self.store.value(p).clone())).collect();
            let all = self.propagate(&mut t, ent, &lw, &lb, Some(rng));
            let u = t.gather_rows(all, &users);
            let i = t.gather_rows(all, &pos);
            let j = t.gather_rows(all, &neg);
            let loss = bpr_head(&mut t, u, i, j, batch.len(), self.config.base.l2);
            total += t.value(loss)[(0, 0)];
            prof.forward_ns += clock.elapsed().as_nanos() as u64;
            let clock = Instant::now();
            t.backward(loss);
            let mut grads: Vec<(ParamId, Grad)> = Vec::new();
            if let Some(g) = t.take_grad(ent) {
                grads.push((self.ent_emb, Grad::Dense(g)));
            }
            for (&p, &var) in self.layer_w.iter().zip(&lw) {
                if let Some(g) = t.take_grad(var) {
                    grads.push((p, Grad::Dense(g)));
                }
            }
            for (&p, &var) in self.layer_b.iter().zip(&lb) {
                if let Some(g) = t.take_grad(var) {
                    grads.push((p, Grad::Dense(g)));
                }
            }
            prof.backward_ns += clock.elapsed().as_nanos() as u64;
            let clock = Instant::now();
            self.store.apply(&mut self.adam, &grads);
            prof.optimizer_ns += clock.elapsed().as_nanos() as u64;

            // --- TransR phase (L₁, Eq. 2) ---
            if !kg_batch.is_empty() {
                let clock = Instant::now();
                let mut t = Tape::new();
                let ent = t.leaf(self.store.value(self.ent_emb).clone());
                let remb = t.leaf(self.store.value(self.rel_emb).clone());
                let rproj = t.leaf(self.store.value(self.rel_proj).clone());
                let loss = transr::margin_loss(
                    &mut t,
                    ent,
                    remb,
                    rproj,
                    d,
                    self.n_rel,
                    kg_batch,
                    self.config.margin,
                );
                total += t.value(loss)[(0, 0)];
                prof.forward_ns += clock.elapsed().as_nanos() as u64;
                let clock = Instant::now();
                t.backward(loss);
                let grads: Vec<(ParamId, Grad)> =
                    [(self.ent_emb, ent), (self.rel_emb, remb), (self.rel_proj, rproj)]
                        .into_iter()
                        .filter_map(|(p, var)| t.take_grad(var).map(|g| (p, Grad::Dense(g))))
                        .collect();
                prof.backward_ns += clock.elapsed().as_nanos() as u64;
                let clock = Instant::now();
                self.store.apply(&mut self.adam, &grads);
                prof.optimizer_ns += clock.elapsed().as_nanos() as u64;
            }
        }
        total
    }

    /// Batch-local training arm — the sparse/lazy fast path:
    ///
    /// * a scoped worker thread extracts batch `b+1`'s receptive field
    ///   while the main thread trains batch `b` (double buffering over a
    ///   bounded rendezvous channel),
    /// * the entity matrix enters each tape as a gather leaf over exactly
    ///   the rows the batch reads, so backward yields a row-sparse
    ///   gradient and lazy Adam steps only those rows,
    /// * [`ParamStore::sync_rows`] catches every row up before a tape
    ///   snapshots it, and [`ParamStore::sync_all`] squares the whole
    ///   matrix off at epoch end — keeping the result bitwise identical
    ///   to [`Ckat::run_batches_full`] whenever dropout is off.
    fn run_batches_local(
        &mut self,
        ctx: &TrainContext<'_>,
        batches: &[(Vec<BprSample>, Vec<KgSample>)],
        rng: &mut StdRng,
        prof: &mut EpochProfile,
    ) -> f32 {
        let Ckat {
            store,
            adam,
            ent_emb,
            rel_emb,
            rel_proj,
            layer_w,
            layer_b,
            config,
            n_entities,
            n_rel,
            att,
            scratch,
            ..
        } = self;
        let (ent_emb, rel_emb, rel_proj) = (*ent_emb, *rel_emb, *rel_proj);
        let (n_entities, n_rel) = (*n_entities, *n_rel);
        let config: &CkatConfig = config;
        let att: &[f32] = att;
        let d = config.base.embed_dim;
        let depth = config.depth();
        let ckg = ctx.ckg;
        let full_edges = ckg.n_edges() as u64;

        // Seed sets for the extraction worker: users ++ pos ++ neg,
        // deduplicated so BFS never re-walks a repeated user/item (batches
        // routinely repeat both). `pos_map` recovers the positional
        // thirds-layout on the training side: position `p`'s seed local is
        // `seed_locals[pos_map[p]]`. Dedup is bitwise-safe — extraction
        // discovers seeds in first-occurrence order either way.
        let (seed_sets, pos_maps): (Vec<Vec<usize>>, Vec<Vec<usize>>) = batches
            .iter()
            .map(|(bpr, _)| {
                let mut s = Vec::with_capacity(3 * bpr.len());
                s.extend(bpr.iter().map(|x| x.user as usize));
                s.extend(bpr.iter().map(|x| ckg.item_entity(x.pos)));
                s.extend(bpr.iter().map(|x| ckg.item_entity(x.neg)));
                dedup_seeds(&s)
            })
            .unzip();

        let mut total = 0.0;
        std::thread::scope(|sc| {
            // Capacity 1 = classic double buffering: the worker stays at
            // most one extraction ahead of the trainer, bounding memory to
            // two subgraphs.
            let (tx, rx) = mpsc::sync_channel::<(BatchSubgraph, Vec<f32>, u64)>(1);
            sc.spawn(move || {
                for seeds in &seed_sets {
                    let clock = Instant::now();
                    let sub = scratch.extract(ckg, seeds, depth);
                    let att_vals: Vec<f32> = sub.edge_ids.iter().map(|&k| att[k]).collect();
                    let ns = clock.elapsed().as_nanos() as u64;
                    if tx.send((sub, att_vals, ns)).is_err() {
                        return; // trainer bailed out early
                    }
                }
            });
            for ((batch, kg_batch), pos_map) in batches.iter().zip(&pos_maps) {
                let b = batch.len();
                prof.batches += 1;
                prof.full_rows += n_entities as u64;
                prof.full_edges += full_edges;

                let clock = Instant::now();
                let (sub, att_vals, extract_ns) =
                    rx.recv().expect("extraction worker terminated early");
                // Critical-path attribution: the time this recv blocked is
                // extraction wall time up to the batch's own extraction CPU
                // cost; any excess is channel/scheduling overhead and stays
                // in `extract_wait_ns` so `train_ns()` keeps summing to the
                // epoch wall clock.
                let wait = clock.elapsed().as_nanos() as u64;
                let wall = wait.min(extract_ns);
                prof.extract_wall_ns += wall;
                prof.extract_wait_ns += wait - wall;
                prof.extract_ns += extract_ns;
                let n_sub = sub.n_nodes();
                let n_sub_edges = sub.n_edges();
                prof.gathered_rows += n_sub as u64;
                prof.gathered_edges += n_sub_edges as u64;
                prof.forward_flops += propagation_flops(config, n_sub as u64, n_sub_edges as u64);

                // Catch the subgraph's rows up to Adam's step count before
                // the tape snapshots them.
                let clock = Instant::now();
                store.sync_rows(adam, ent_emb, &sub.nodes);
                prof.optimizer_ns += clock.elapsed().as_nanos() as u64;

                let clock = Instant::now();
                let mut t = Tape::new();
                let lw: Vec<Var> =
                    layer_w.iter().map(|&p| t.leaf(store.value(p).clone())).collect();
                let lb: Vec<Var> =
                    layer_b.iter().map(|&p| t.leaf(store.value(p).clone())).collect();
                let BatchSubgraph { nodes, seed_locals, tails, heads, .. } = sub;
                let att_col = t.constant(Matrix::from_vec(n_sub_edges, 1, att_vals));
                let ent_sub = t.gather_leaf(store.value(ent_emb), Arc::new(nodes));
                let all = propagate_over(
                    config,
                    &mut t,
                    ent_sub,
                    att_col,
                    Arc::new(tails),
                    Arc::new(heads),
                    n_sub,
                    &lw,
                    &lb,
                    Some(rng),
                    None,
                );
                let local_of = |p: usize| seed_locals[pos_map[p]];
                let u_locals: Vec<usize> = (0..b).map(local_of).collect();
                let i_locals: Vec<usize> = (b..2 * b).map(local_of).collect();
                let j_locals: Vec<usize> = (2 * b..3 * b).map(local_of).collect();
                let u = t.gather_rows(all, &u_locals);
                let i = t.gather_rows(all, &i_locals);
                let j = t.gather_rows(all, &j_locals);
                let loss = bpr_head(&mut t, u, i, j, b, config.base.l2);
                total += t.value(loss)[(0, 0)];
                prof.forward_ns += clock.elapsed().as_nanos() as u64;

                let clock = Instant::now();
                t.backward(loss);
                let mut grads: Vec<(ParamId, Grad)> = Vec::new();
                if let Some(g) = t.take_sparse_grad(ent_sub) {
                    grads.push((ent_emb, Grad::Sparse(g)));
                }
                for (&p, &var) in layer_w.iter().zip(&lw) {
                    if let Some(g) = t.take_grad(var) {
                        grads.push((p, Grad::Dense(g)));
                    }
                }
                for (&p, &var) in layer_b.iter().zip(&lb) {
                    if let Some(g) = t.take_grad(var) {
                        grads.push((p, Grad::Dense(g)));
                    }
                }
                prof.backward_ns += clock.elapsed().as_nanos() as u64;
                let clock = Instant::now();
                store.apply(adam, &grads);
                prof.optimizer_ns += clock.elapsed().as_nanos() as u64;

                // --- TransR phase (L₁, Eq. 2), sparse over the batch's
                // head/tail/corrupt-tail entity union ---
                if !kg_batch.is_empty() {
                    let heads_g: Vec<usize> = kg_batch.iter().map(|s| s.head as usize).collect();
                    let tails_g: Vec<usize> = kg_batch.iter().map(|s| s.tail as usize).collect();
                    let negs_g: Vec<usize> = kg_batch.iter().map(|s| s.neg_tail as usize).collect();
                    let (union, locals) = union_locals(&[&heads_g, &tails_g, &negs_g]);
                    let local_kg: Vec<KgSample> = kg_batch
                        .iter()
                        .enumerate()
                        .map(|(n, s)| KgSample {
                            head: locals[0][n] as Id,
                            rel: s.rel,
                            tail: locals[1][n] as Id,
                            neg_tail: locals[2][n] as Id,
                        })
                        .collect();
                    let clock = Instant::now();
                    store.sync_rows(adam, ent_emb, &union);
                    prof.optimizer_ns += clock.elapsed().as_nanos() as u64;

                    let clock = Instant::now();
                    let mut t = Tape::new();
                    let ent_u = t.gather_leaf(store.value(ent_emb), Arc::new(union));
                    let remb = t.leaf(store.value(rel_emb).clone());
                    let rproj = t.leaf(store.value(rel_proj).clone());
                    let loss = transr::margin_loss(
                        &mut t,
                        ent_u,
                        remb,
                        rproj,
                        d,
                        n_rel,
                        &local_kg,
                        config.margin,
                    );
                    total += t.value(loss)[(0, 0)];
                    prof.forward_ns += clock.elapsed().as_nanos() as u64;
                    let clock = Instant::now();
                    t.backward(loss);
                    let mut grads: Vec<(ParamId, Grad)> = Vec::new();
                    if let Some(g) = t.take_sparse_grad(ent_u) {
                        grads.push((ent_emb, Grad::Sparse(g)));
                    }
                    for (p, var) in [(rel_emb, remb), (rel_proj, rproj)] {
                        if let Some(g) = t.take_grad(var) {
                            grads.push((p, Grad::Dense(g)));
                        }
                    }
                    prof.backward_ns += clock.elapsed().as_nanos() as u64;
                    let clock = Instant::now();
                    store.apply(adam, &grads);
                    prof.optimizer_ns += clock.elapsed().as_nanos() as u64;
                }
            }
        });
        // Square every deferred row off before anything outside the loop
        // (attention refresh, eval, checkpointing, cross-mode comparison)
        // reads the matrix.
        let clock = Instant::now();
        store.sync_all(adam, ent_emb);
        prof.optimizer_ns += clock.elapsed().as_nanos() as u64;
        total
    }

    /// Replica training arm: macro-steps of [`MACRO_WIDTH`] independent
    /// micro-batches, each sampled/extracted/trained against a *frozen*
    /// parameter snapshot on its own tape, gradients folded in batch
    /// order and applied once per phase (BPR, then TransR). The replica
    /// count only sets how many threads execute the fixed schedule, so
    /// the run is bitwise-identical for every `replicas ≥ 1` (see
    /// `crate::replica` for the determinism argument).
    ///
    /// Each macro-step runs as main-thread shared work, then one
    /// [`pooled_map`] train phase, then a main-thread reduction:
    ///
    /// * main: sample every micro-batch from its private RNG stream (the
    ///   exact draw order of the other training arms, so the schedule is
    ///   independent of the replica count), dedup each batch's seeds, and
    ///   extract the **union receptive field** of all `K` seed sets with
    ///   one [`SubgraphScratch::extract_many`] BFS — each batch's
    ///   subgraph is a local-id view derived from the union, so shared
    ///   high-degree neighborhoods are walked once per macro-step instead
    ///   of once per replica.
    /// * main: settle lazy Adam ([`ParamStore::sync_rows`] over the
    ///   union, or [`ParamStore::sync_all`] when the hub cache runs) and,
    ///   with the hub cache on, refresh [`HubReps`] if parameters or
    ///   attention moved, then slice each batch's [`HubOverride`] out of
    ///   it.
    /// * **Train** (parallel): per batch, build the BPR and TransR tapes
    ///   against the frozen snapshot and return their gradients.
    /// * main: fold gradients in batch order, scale by `1/K`, apply.
    ///
    /// This retires both the single-slot prefetch thread and the old
    /// pooled prepare phase, whose per-replica independent extractions
    /// made aggregate extraction CPU scale linearly with `R` and whose
    /// closing barrier was (mis)charged to `extract_wait_ns`. Extraction
    /// now sits on the main thread and is charged to both
    /// [`EpochProfile::extract_ns`] (aggregate CPU) and
    /// [`EpochProfile::extract_wall_ns`] (critical path);
    /// `extract_wait_ns` stays 0 in this arm.
    fn run_batches_replicated(
        &mut self,
        ctx: &TrainContext<'_>,
        n_batches: usize,
        stream_base: u64,
        prof: &mut EpochProfile,
    ) -> f32 {
        let threads = self.config.base.replicas.max(1);
        let Ckat {
            store,
            adam,
            ent_emb,
            rel_emb,
            rel_proj,
            layer_w,
            layer_b,
            config,
            n_entities,
            n_rel,
            tails,
            heads,
            att,
            scratch,
            hub_flags,
            hub_ids,
            hub_cache,
            param_version,
            att_epoch,
            ..
        } = self;
        let (ent_emb, rel_emb, rel_proj) = (*ent_emb, *rel_emb, *rel_proj);
        let (n_entities, n_rel) = (*n_entities, *n_rel);
        let config: &CkatConfig = config;
        let att: &[f32] = att;
        let d = config.base.embed_dim;
        let depth = config.depth();
        let batch_size = config.base.batch_size;
        let ckg = ctx.ckg;
        let inter = ctx.inter;
        let full_edges = ckg.n_edges() as u64;
        let use_cache = config.hub_cache && !hub_ids.is_empty();

        let mut total = 0.0;
        for start in (0..n_batches).step_by(MACRO_WIDTH) {
            let end = (start + MACRO_WIDTH).min(n_batches);

            // --- Sample phase (main thread, fixed schedule) ---
            let clock = Instant::now();
            let mut sampled: Vec<(Vec<BprSample>, Vec<KgSample>, StdRng)> = Vec::new();
            for idx in start..end {
                let mut rng = batch_rng(stream_base, idx as u64);
                let bpr = sample_bpr_batch(inter, batch_size, &mut rng);
                if bpr.is_empty() {
                    continue;
                }
                let kg = sample_kg_batch(ckg, batch_size, &mut rng);
                sampled.push((bpr, kg, rng));
            }
            prof.sampling_ns += clock.elapsed().as_nanos() as u64;
            let k = sampled.len();
            if k == 0 {
                continue;
            }

            // --- Union extraction: one cut-BFS serves all K batches ---
            let clock = Instant::now();
            let (seed_sets, pos_maps): (Vec<Vec<usize>>, Vec<Vec<usize>>) = sampled
                .iter()
                .map(|(bpr, _, _)| {
                    let mut s = Vec::with_capacity(3 * bpr.len());
                    s.extend(bpr.iter().map(|x| x.user as usize));
                    s.extend(bpr.iter().map(|x| ckg.item_entity(x.pos)));
                    s.extend(bpr.iter().map(|x| ckg.item_entity(x.neg)));
                    dedup_seeds(&s)
                })
                .unzip();
            let cut = if use_cache { Some(hub_flags.as_slice()) } else { None };
            let union = scratch.extract_many(ckg, &seed_sets, depth, cut);
            let union_nodes = union.union_nodes;
            let extract_ns = clock.elapsed().as_nanos() as u64;
            prof.extract_ns += extract_ns;
            prof.extract_wall_ns += extract_ns;

            // Assemble one PreparedBatch per micro-batch: remap the
            // TransR ids, snapshot the per-edge attention, and account
            // the derived subgraph's size.
            let mut need: Vec<usize> = Vec::new();
            let mut prepared: Vec<PreparedBatch> = Vec::with_capacity(k);
            for (((bpr, kg, rng), sub), pos_map) in
                sampled.into_iter().zip(union.subgraphs).zip(pos_maps)
            {
                prof.batches += 1;
                prof.full_rows += n_entities as u64;
                prof.full_edges += full_edges;
                prof.gathered_rows += sub.n_nodes() as u64;
                prof.gathered_edges += sub.n_edges() as u64;
                prof.forward_flops +=
                    propagation_flops(config, sub.n_nodes() as u64, sub.n_edges() as u64);
                let att_vals: Vec<f32> = sub.edge_ids.iter().map(|&e| att[e]).collect();
                let (kg_union, local_kg) = if kg.is_empty() {
                    (Vec::new(), Vec::new())
                } else {
                    let heads_g: Vec<usize> = kg.iter().map(|s| s.head as usize).collect();
                    let tails_g: Vec<usize> = kg.iter().map(|s| s.tail as usize).collect();
                    let negs_g: Vec<usize> = kg.iter().map(|s| s.neg_tail as usize).collect();
                    let (kg_u, locals) = union_locals(&[&heads_g, &tails_g, &negs_g]);
                    let local_kg: Vec<KgSample> = kg
                        .iter()
                        .enumerate()
                        .map(|(n, s)| KgSample {
                            head: locals[0][n] as Id,
                            rel: s.rel,
                            tail: locals[1][n] as Id,
                            neg_tail: locals[2][n] as Id,
                        })
                        .collect();
                    (kg_u, local_kg)
                };
                if !use_cache {
                    need.extend_from_slice(&kg_union);
                }
                prepared.push(PreparedBatch {
                    b: bpr.len(),
                    local_kg,
                    kg_union,
                    sub,
                    pos_map,
                    att_vals,
                    hub: None,
                    rng,
                });
            }

            if use_cache {
                // --- Hub cache: the full-graph pass snapshots every row,
                // so settle lazy Adam globally, refresh if the stamps
                // moved, then slice each batch's override out of it ---
                let clock = Instant::now();
                store.sync_all(adam, ent_emb);
                let stale = hub_cache
                    .as_ref()
                    .is_none_or(|c| c.param_version != *param_version || c.att_epoch != *att_epoch);
                if stale {
                    let layers = compute_hub_reps(
                        config, store, ent_emb, layer_w, layer_b, att, tails, heads, n_entities,
                        hub_ids,
                    );
                    *hub_cache = Some(HubReps {
                        param_version: *param_version,
                        att_epoch: *att_epoch,
                        layers,
                    });
                    prof.gathered_rows += n_entities as u64;
                    prof.gathered_edges += full_edges;
                    prof.forward_flops += propagation_flops(config, n_entities as u64, full_edges);
                }
                let reps = hub_cache.as_ref().expect("hub cache refreshed above");
                for p in &mut prepared {
                    p.hub = build_hub_override(&p.sub.nodes, hub_flags, hub_ids, reps);
                }
                prof.hub_cache_ns += clock.elapsed().as_nanos() as u64;
            } else {
                // Lazy Adam must settle every row the macro-step reads
                // before workers snapshot them: the union nodes (a
                // superset of every derived subgraph) plus TransR unions.
                need.extend_from_slice(&union_nodes);
                need.sort_unstable();
                need.dedup();
                let clock = Instant::now();
                store.sync_rows(adam, ent_emb, &need);
                prof.optimizer_ns += clock.elapsed().as_nanos() as u64;
            }

            // --- Train phase: frozen snapshot, one tape pair per batch ---
            let frozen: &ParamStore = store;
            let mut units = vec![(); threads];
            let outs: Vec<BatchOut> =
                pooled_map(&mut units, prepared, |_unit, _slot, mut p: PreparedBatch| {
                    let b = p.b;
                    let clock = Instant::now();
                    let mut t = Tape::new();
                    let lw: Vec<Var> =
                        layer_w.iter().map(|&q| t.leaf(frozen.value(q).clone())).collect();
                    let lb: Vec<Var> =
                        layer_b.iter().map(|&q| t.leaf(frozen.value(q).clone())).collect();
                    let n_sub = p.sub.n_nodes();
                    let n_sub_edges = p.sub.n_edges();
                    let BatchSubgraph { nodes, seed_locals, tails, heads, .. } = p.sub;
                    let att_col = t.constant(Matrix::from_vec(n_sub_edges, 1, p.att_vals));
                    let ent_sub = t.gather_leaf(frozen.value(ent_emb), Arc::new(nodes));
                    let all = propagate_over(
                        config,
                        &mut t,
                        ent_sub,
                        att_col,
                        Arc::new(tails),
                        Arc::new(heads),
                        n_sub,
                        &lw,
                        &lb,
                        Some(&mut p.rng),
                        p.hub.as_ref(),
                    );
                    let local_of = |pos: usize| seed_locals[p.pos_map[pos]];
                    let u_locals: Vec<usize> = (0..b).map(local_of).collect();
                    let i_locals: Vec<usize> = (b..2 * b).map(local_of).collect();
                    let j_locals: Vec<usize> = (2 * b..3 * b).map(local_of).collect();
                    let u = t.gather_rows(all, &u_locals);
                    let i = t.gather_rows(all, &i_locals);
                    let j = t.gather_rows(all, &j_locals);
                    let loss = bpr_head(&mut t, u, i, j, b, config.base.l2);
                    let mut loss_val = t.value(loss)[(0, 0)];
                    let mut forward_ns = clock.elapsed().as_nanos() as u64;

                    let clock = Instant::now();
                    t.backward(loss);
                    let mut bpr_grads: Vec<(ParamId, Grad)> = Vec::new();
                    if let Some(g) = t.take_sparse_grad(ent_sub) {
                        bpr_grads.push((ent_emb, Grad::Sparse(g)));
                    }
                    for (&q, &var) in layer_w.iter().zip(&lw) {
                        if let Some(g) = t.take_grad(var) {
                            bpr_grads.push((q, Grad::Dense(g)));
                        }
                    }
                    for (&q, &var) in layer_b.iter().zip(&lb) {
                        if let Some(g) = t.take_grad(var) {
                            bpr_grads.push((q, Grad::Dense(g)));
                        }
                    }
                    let mut backward_ns = clock.elapsed().as_nanos() as u64;

                    // TransR tape against the *same* frozen snapshot.
                    let mut kg_grads: Vec<(ParamId, Grad)> = Vec::new();
                    if !p.local_kg.is_empty() {
                        let clock = Instant::now();
                        let mut t = Tape::new();
                        let ent_u = t.gather_leaf(frozen.value(ent_emb), Arc::new(p.kg_union));
                        let remb = t.leaf(frozen.value(rel_emb).clone());
                        let rproj = t.leaf(frozen.value(rel_proj).clone());
                        let loss = transr::margin_loss(
                            &mut t,
                            ent_u,
                            remb,
                            rproj,
                            d,
                            n_rel,
                            &p.local_kg,
                            config.margin,
                        );
                        // audit: fold — per-job accumulator local to this
                        // closure; jobs fold on the main thread in job order
                        loss_val += t.value(loss)[(0, 0)];
                        forward_ns += clock.elapsed().as_nanos() as u64;
                        let clock = Instant::now();
                        t.backward(loss);
                        if let Some(g) = t.take_sparse_grad(ent_u) {
                            kg_grads.push((ent_emb, Grad::Sparse(g)));
                        }
                        for (q, var) in [(rel_emb, remb), (rel_proj, rproj)] {
                            if let Some(g) = t.take_grad(var) {
                                kg_grads.push((q, Grad::Dense(g)));
                            }
                        }
                        backward_ns += clock.elapsed().as_nanos() as u64;
                    }
                    BatchOut { bpr_grads, kg_grads, loss: loss_val, forward_ns, backward_ns }
                });

            // --- Reduce: fold in batch order, scale by 1/K, apply once ---
            let mut bpr_parts: Vec<Vec<(ParamId, Grad)>> = Vec::with_capacity(k);
            let mut kg_parts: Vec<Vec<(ParamId, Grad)>> = Vec::new();
            for o in outs {
                total += o.loss;
                prof.forward_ns += o.forward_ns;
                prof.backward_ns += o.backward_ns;
                bpr_parts.push(o.bpr_grads);
                if !o.kg_grads.is_empty() {
                    kg_parts.push(o.kg_grads);
                }
            }
            let clock = Instant::now();
            let folded_bpr = fold_grads_ordered(&bpr_parts, 1.0 / bpr_parts.len() as f32);
            let folded_kg = if kg_parts.is_empty() {
                Vec::new()
            } else {
                fold_grads_ordered(&kg_parts, 1.0 / kg_parts.len() as f32)
            };
            prof.reduce_ns += clock.elapsed().as_nanos() as u64;
            let clock = Instant::now();
            store.apply(adam, &folded_bpr);
            if !folded_kg.is_empty() {
                store.apply(adam, &folded_kg);
            }
            prof.optimizer_ns += clock.elapsed().as_nanos() as u64;
            // Parameters moved: the next macro-step must recompute the
            // hub representations.
            *param_version += 1;
        }
        let clock = Instant::now();
        store.sync_all(adam, ent_emb);
        prof.optimizer_ns += clock.elapsed().as_nanos() as u64;
        total
    }
}

/// One micro-batch after the main-thread shared work: samples drawn,
/// subgraph derived from the macro-step union, TransR ids remapped, hub
/// override sliced — everything the train phase needs except the frozen
/// parameter snapshot. Carries the batch's private RNG (post-sampling
/// state) forward for dropout.
struct PreparedBatch {
    /// BPR batch size (the seed list is `3·b` positions deduped into
    /// `pos_map`).
    b: usize,
    local_kg: Vec<KgSample>,
    kg_union: Vec<usize>,
    /// This batch's subgraph, derived as a view of the macro-step union.
    sub: BatchSubgraph,
    /// Position `p` of the users‖pos‖neg seed layout maps to
    /// `sub.seed_locals[pos_map[p]]`.
    pos_map: Vec<usize>,
    att_vals: Vec<f32>,
    /// Hub rows present in `sub` with their cached layer values; `None`
    /// when the hub cache is off or no hub landed in this subgraph.
    hub: Option<HubOverride>,
    rng: StdRng,
}

/// One micro-batch's contribution to the macro-step: per-phase gradient
/// lists (folded on the main thread), its loss, and worker-side timings.
struct BatchOut {
    bpr_grads: Vec<(ParamId, Grad)>,
    kg_grads: Vec<(ParamId, Grad)>,
    loss: f32,
    forward_ns: u64,
    backward_ns: u64,
}

/// The propagation stack over an arbitrary CSR edge view: `h0` holds
/// one embedding row per node, `tails`/`heads` are gather indices and
/// segment ids into those rows, and `att` is the matching `(E, 1)`
/// per-edge weight column. Used with the full CKG by [`Ckat::propagate`]
/// and with a batch receptive field by [`Ckat::train_epoch`] — both views
/// emit the exact same tape op sequence, which is what makes them
/// differentially comparable. A free function (not a method) so the
/// training loop can run it while a worker thread holds the model's
/// extraction scratch.
#[allow(clippy::too_many_arguments)]
fn propagate_over(
    config: &CkatConfig,
    t: &mut Tape,
    h0: Var,
    att: Var,
    tails: Arc<Vec<usize>>,
    heads: Arc<Vec<usize>>,
    n_segments: usize,
    layer_w: &[Var],
    layer_b: &[Var],
    mut dropout_rng: Option<&mut StdRng>,
    hub: Option<&HubOverride>,
) -> Var {
    let mut h = h0;
    let mut all = h0;
    for l in 0..config.layer_dims.len() {
        // One fused tape op replaces gather → scale → segment-sum: no
        // `E × cols` intermediates hit memory, and the fusion is
        // bit-transparent (same products, same add order), so every
        // cross-mode equality the unfused chain satisfied still holds.
        let e_n =
            t.gather_scale_segment_sum(h, att, Arc::clone(&tails), Arc::clone(&heads), n_segments);
        let mixed = match config.aggregator {
            Aggregator::Concat => t.concat_cols(h, e_n),
            Aggregator::Sum => t.add(h, e_n),
        };
        let z = t.matmul(mixed, layer_w[l]);
        let zb = t.add_broadcast_row(z, layer_b[l]);
        let activated = t.leaky_relu(zb);
        let dropped = match dropout_rng.as_deref_mut() {
            Some(r) if config.base.keep_prob < 1.0 => {
                t.dropout(activated, config.base.keep_prob, r)
            }
            _ => activated,
        };
        // KGAT l2-normalizes each layer's output so no single order of
        // connectivity dominates the concatenated representation.
        h = t.normalize_rows(dropped);
        if let Some(h_ov) = hub {
            // Replace hub rows with their cached full-graph values
            // *after* normalization, so layer `l+1` aggregates the exact
            // representations the hubs' (un-extracted) neighborhoods
            // would have produced. Gradients through hub rows stop here.
            h = t.override_rows(h, Arc::clone(&h_ov.locals), &h_ov.layers[l]);
        }
        all = t.concat_cols(all, h);
    }
    all
}

/// Full-graph layer-stack outputs of every hub, against the *current*
/// (settled) parameters — the per-macro-step [`HubReps`] refresh. Runs
/// the exact constants-tape forward of [`Ckat::final_representations`]
/// (no dropout — cached hub values are deterministic), then slices each
/// layer's column block down to the hub rows.
#[allow(clippy::too_many_arguments)]
fn compute_hub_reps(
    config: &CkatConfig,
    store: &ParamStore,
    ent_emb: ParamId,
    layer_w: &[ParamId],
    layer_b: &[ParamId],
    att: &[f32],
    tails: &Arc<Vec<usize>>,
    heads: &Arc<Vec<usize>>,
    n_entities: usize,
    hub_ids: &[usize],
) -> Vec<Matrix> {
    let mut t = Tape::new();
    let ent = t.constant(store.value(ent_emb).clone());
    let lw: Vec<Var> = layer_w.iter().map(|&p| t.constant(store.value(p).clone())).collect();
    let lb: Vec<Var> = layer_b.iter().map(|&p| t.constant(store.value(p).clone())).collect();
    let att_col = t.constant(Matrix::from_vec(att.len(), 1, att.to_vec()));
    let all = propagate_over(
        config,
        &mut t,
        ent,
        att_col,
        Arc::clone(tails),
        Arc::clone(heads),
        n_entities,
        &lw,
        &lb,
        None,
        None,
    );
    let val = t.value(all);
    let mut col = config.base.embed_dim;
    let mut layers = Vec::with_capacity(config.layer_dims.len());
    for &dim in &config.layer_dims {
        let mut m = Matrix::zeros(hub_ids.len(), dim);
        for (r, &g) in hub_ids.iter().enumerate() {
            m.row_mut(r).copy_from_slice(&val.row(g)[col..col + dim]);
        }
        layers.push(m);
        col += dim;
    }
    layers
}

/// Slice one batch's [`HubOverride`] out of the macro-step [`HubReps`]:
/// the hub nodes present in the subgraph (seed hubs stay interior, cut
/// hubs sit in the ring), as strictly-increasing local rows with their
/// cached per-layer values.
fn build_hub_override(
    sub_nodes: &[usize],
    hub_flags: &[bool],
    hub_ids: &[usize],
    reps: &HubReps,
) -> Option<HubOverride> {
    let mut locals = Vec::new();
    let mut rows = Vec::new();
    for (local, &g) in sub_nodes.iter().enumerate() {
        if hub_flags[g] {
            locals.push(local);
            rows.push(hub_ids.binary_search(&g).expect("every hub flag has a hub id"));
        }
    }
    if locals.is_empty() {
        return None;
    }
    let layers = reps
        .layers
        .iter()
        .map(|m| {
            let mut out = Matrix::zeros(rows.len(), m.cols());
            for (r, &src) in rows.iter().enumerate() {
                out.row_mut(r).copy_from_slice(m.row(src));
            }
            out
        })
        .collect();
    Some(HubOverride { locals: Arc::new(locals), layers })
}

/// Closed-form FLOP estimate for one propagation forward pass over
/// `rows` node rows and `edges` messages.
fn propagation_flops(config: &CkatConfig, rows: u64, edges: u64) -> u64 {
    let mut flops = 0u64;
    let mut in_dim = config.base.embed_dim as u64;
    for &out_dim in &config.layer_dims {
        let out = out_dim as u64;
        let w_rows = match config.aggregator {
            Aggregator::Concat => 2 * in_dim,
            Aggregator::Sum => in_dim,
        };
        // Attention scaling plus segment-sum accumulation per message.
        flops += 2 * edges * in_dim;
        // Dense layer matmul plus bias.
        flops += rows * (2 * w_rows + 1) * out;
        // LeakyReLU and row normalization.
        flops += 4 * rows * out;
        in_dim = out;
    }
    flops
}

/// BPR + L2 loss head over gathered user/pos/neg representation rows
/// (Eqs. 12–13). Shared verbatim by both training arms so their op
/// sequences stay identical.
fn bpr_head(t: &mut Tape, u: Var, i: Var, j: Var, batch: usize, l2: f32) -> Var {
    let y_pos = t.rowwise_dot(u, i);
    let y_neg = t.rowwise_dot(u, j);
    let diff = t.sub(y_pos, y_neg);
    let ls = t.log_sigmoid(diff);
    let s = t.sum_all(ls);
    let bpr = t.scale(s, -1.0 / batch as f32);
    let ru = t.frobenius_sq(u);
    let ri = t.frobenius_sq(i);
    let rj = t.frobenius_sq(j);
    let reg0 = t.add(ru, ri);
    let reg1 = t.add(reg0, rj);
    let reg = t.scale(reg1, l2 / batch as f32);
    t.add(bpr, reg)
}

impl Recommender for Ckat {
    fn name(&self) -> String {
        let att = if self.config.use_attention { "Att" } else { "noAtt" };
        let agg = match self.config.aggregator {
            Aggregator::Concat => "concat",
            Aggregator::Sum => "sum",
        };
        format!("CKAT-{} ({att},{agg})", self.config.depth())
    }

    fn train_epoch(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32 {
        let wall = Instant::now();
        let mut prof =
            EpochProfile { replicas: self.config.base.replicas as u64, ..EpochProfile::default() };
        let clock = Instant::now();
        self.refresh_attention(ctx);
        prof.attention_ns = clock.elapsed().as_nanos() as u64;
        let n_batches = ctx.batches_per_epoch(self.config.base.batch_size);

        let total = if self.config.base.replicas >= 1 {
            // Replica macro-step mode: the epoch RNG contributes exactly
            // one draw (the stream base); every batch derives its own
            // sampling/dropout stream from it, so the schedule does not
            // depend on the replica count (see `crate::replica`).
            let stream_base = rng.next_u64();
            self.run_batches_replicated(ctx, n_batches, stream_base, &mut prof)
        } else {
            // Legacy per-batch path. Draw every mini-batch up front, in
            // the legacy interleaved order (BPR then TransR per batch,
            // stopping at the first empty BPR draw before its TransR
            // draw). With dropout off this consumes the RNG stream
            // exactly as inline sampling did, which is what lets the
            // prefetching batch-local arm stay bitwise comparable to the
            // full-graph oracle; it also hands the extraction worker
            // every seed set ahead of time. An empty first draw abandons
            // the epoch but still *falls through* to the invalidation
            // below — an earlier version returned 0.0 early and kept
            // serving stale eval caches.
            let clock = Instant::now();
            let mut batches: Vec<(Vec<BprSample>, Vec<KgSample>)> = Vec::new();
            for _ in 0..n_batches {
                let bpr = sample_bpr_batch(ctx.inter, self.config.base.batch_size, rng);
                if bpr.is_empty() {
                    break;
                }
                let kg = sample_kg_batch(ctx.ckg, self.config.base.batch_size, rng);
                batches.push((bpr, kg));
            }
            prof.sampling_ns += clock.elapsed().as_nanos() as u64;

            if self.config.batch_local {
                self.run_batches_local(ctx, &batches, rng, &mut prof)
            } else {
                self.run_batches_full(ctx, &batches, rng, &mut prof)
            }
        };
        // Every exit path must drop the eval caches *and* the per-edge
        // attention snapshot: parameters changed, so both are stale.
        self.cached_users = None;
        self.cached_items = None;
        self.att_fresh = false;
        prof.wall_ns = wall.elapsed().as_nanos() as u64;
        self.last_profile = Some(prof);
        total / n_batches as f32
    }

    fn prepare_eval(&mut self, ctx: &TrainContext<'_>) {
        if !self.att_fresh {
            self.refresh_attention(ctx);
        }
        let all = self.final_representations();
        let user_rows: Vec<usize> = (0..self.n_users).collect();
        self.cached_users = Some(all.gather_rows(&user_rows));
        self.cached_items = Some(all.gather_rows(&self.item_entities));
    }

    fn score_items(&self, user: Id) -> Vec<f32> {
        dot_scores(
            self.cached_users.as_ref().expect("prepare_eval not called"),
            self.cached_items.as_ref().expect("prepare_eval not called"),
            user,
        )
    }

    fn eval_matrices(&self) -> Option<(&Matrix, &Matrix)> {
        self.cached_users.as_ref().zip(self.cached_items.as_ref())
    }

    fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn save_state(&self) -> ModelState {
        ModelState::capture(&self.store, &self.adam)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CkptError> {
        state.restore(&mut self.store, &mut self.adam)?;
        self.cached_users = None;
        self.cached_items = None;
        self.att_fresh = false;
        // The restored parameters are arbitrary relative to the stamps;
        // drop the hub cache rather than risk a stale match.
        self.hub_cache = None;
        self.param_version += 1;
        Ok(())
    }

    fn scale_lr(&mut self, factor: f32) {
        self.adam.lr *= factor;
    }

    fn replicas(&self) -> usize {
        self.config.base.replicas
    }

    fn params_finite(&mut self) -> bool {
        self.store.touched_finite()
    }

    fn take_epoch_profile(&mut self) -> Option<EpochProfile> {
        self.last_profile.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::TrainContext;
    use crate::test_fixtures::{auc, toy_world};

    fn fast_config() -> CkatConfig {
        let mut base = ModelConfig::fast();
        base.keep_prob = 1.0;
        CkatConfig {
            layer_dims: vec![16, 8],
            use_attention: true,
            aggregator: Aggregator::Concat,
            transr_dim: 16,
            margin: 1.0,
            batch_local: true,
            hub_cache: true,
            hub_percentile: 0.99,
            base,
        }
    }

    #[test]
    fn final_dim_matches_concat_of_layers() {
        let cfg = fast_config();
        assert_eq!(cfg.final_dim(), 16 + 16 + 8);
        assert_eq!(cfg.depth(), 2);
    }

    #[test]
    fn ckat_learns_toy_world() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Ckat::new(&ctx, &fast_config());
        let mut rng = seeded_rng(1);
        let first = model.train_epoch(&ctx, &mut rng);
        let mut last = first;
        for _ in 0..30 {
            last = model.train_epoch(&ctx, &mut rng);
        }
        assert!(last < first, "CKAT loss should fall: {first} -> {last}");
        model.prepare_eval(&ctx);
        let a = auc(&model, &inter);
        assert!(a > 0.75, "CKAT AUC {a}");
    }

    #[test]
    fn representations_have_final_dim() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Ckat::new(&ctx, &fast_config());
        model.prepare_eval(&ctx);
        let cfg = fast_config();
        assert_eq!(model.cached_users.as_ref().unwrap().cols(), cfg.final_dim());
        assert_eq!(model.cached_items.as_ref().unwrap().rows(), inter.n_items);
    }

    #[test]
    fn attention_toggle_changes_model() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut with_att = Ckat::new(&ctx, &fast_config());
        let mut cfg = fast_config();
        cfg.use_attention = false;
        let mut without = Ckat::new(&ctx, &cfg);
        with_att.prepare_eval(&ctx);
        without.prepare_eval(&ctx);
        // Same init seeds, different propagation weights → different scores.
        assert_ne!(with_att.score_items(0), without.score_items(0));
        assert!(with_att.name().contains("Att"));
        assert!(without.name().contains("noAtt"));
    }

    #[test]
    fn sum_aggregator_runs_and_differs() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut cfg = fast_config();
        cfg.aggregator = Aggregator::Sum;
        let mut model = Ckat::new(&ctx, &cfg);
        let mut rng = seeded_rng(2);
        model.train_epoch(&ctx, &mut rng);
        model.prepare_eval(&ctx);
        assert_eq!(model.score_items(0).len(), inter.n_items);
    }

    #[test]
    fn depth_one_and_three_both_work() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        for dims in [vec![16], vec![16, 8, 4]] {
            let mut cfg = fast_config();
            cfg.layer_dims = dims.clone();
            let mut model = Ckat::new(&ctx, &cfg);
            let mut rng = seeded_rng(3);
            model.train_epoch(&ctx, &mut rng);
            model.prepare_eval(&ctx);
            assert_eq!(
                model.cached_users.as_ref().unwrap().cols(),
                16 + dims.iter().sum::<usize>()
            );
        }
    }

    #[test]
    fn warm_start_copies_surviving_entities() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut old = Ckat::new(&ctx, &fast_config());
        let mut rng = seeded_rng(4);
        old.train_epoch(&ctx, &mut rng);

        // "Grow" the facility: identity map here (same graph), so every
        // entity row must be copied verbatim and layer weights reused.
        let map: Vec<Option<usize>> = (0..ckg.n_entities()).map(Some).collect();
        let warm = Ckat::new_warm(&ctx, &fast_config(), &old, &map);
        assert_eq!(
            warm.store.value(warm.ent_emb).as_slice(),
            old.store.value(old.ent_emb).as_slice()
        );
        assert_eq!(
            warm.store.value(warm.layer_w[0]).as_slice(),
            old.store.value(old.layer_w[0]).as_slice()
        );

        // Partial map: unmapped entities keep fresh init (differ from old).
        let mut partial = map.clone();
        partial[0] = None;
        let warm2 = Ckat::new_warm(&ctx, &fast_config(), &old, &partial);
        assert_ne!(warm2.store.value(warm2.ent_emb).row(0), old.store.value(old.ent_emb).row(0));
        assert_eq!(warm2.store.value(warm2.ent_emb).row(1), old.store.value(old.ent_emb).row(1));
    }

    #[test]
    fn warm_start_copies_relation_parameters() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut old = Ckat::new(&ctx, &fast_config());
        let mut rng = seeded_rng(7);
        old.train_epoch(&ctx, &mut rng);

        let map: Vec<Option<usize>> = (0..ckg.n_entities()).map(Some).collect();
        let warm = Ckat::new_warm(&ctx, &fast_config(), &old, &map);
        assert_eq!(
            warm.store.value(warm.rel_emb).as_slice(),
            old.store.value(old.rel_emb).as_slice(),
            "trained relation embeddings must survive the warm start"
        );
        assert_eq!(
            warm.store.value(warm.rel_proj).as_slice(),
            old.store.value(old.rel_proj).as_slice(),
            "trained relation projections must survive the warm start"
        );
        assert!(!warm.att_fresh, "warm model must refresh attention before eval");
    }

    /// Regression: the epoch-start attention snapshot is stale relative to
    /// the parameters that training just produced, so `prepare_eval` must
    /// recompute it rather than reuse the snapshot.
    #[test]
    fn eval_attention_is_recomputed_after_training() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Ckat::new(&ctx, &fast_config());
        let mut rng = seeded_rng(5);
        model.train_epoch(&ctx, &mut rng);
        let stale = model.attention_weights().to_vec();
        model.prepare_eval(&ctx);
        let fresh = model.attention_weights().to_vec();
        assert_ne!(
            stale, fresh,
            "prepare_eval must recompute attention from the trained parameters"
        );
    }

    /// Regression: an epoch whose first batch comes up empty must still
    /// drop the eval caches — it used to early-return around the
    /// invalidation and serve representations from before the epoch.
    #[test]
    fn degenerate_epoch_still_invalidates_eval_caches() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Ckat::new(&ctx, &fast_config());
        model.prepare_eval(&ctx);
        assert!(model.cached_users.is_some());

        let empty = facility_kg::Interactions::from_lists(
            inter.n_items,
            vec![vec![]; inter.n_users],
            vec![vec![]; inter.n_users],
        );
        let empty_ctx = TrainContext { inter: &empty, ckg: &ckg };
        let mut rng = seeded_rng(6);
        let loss = model.train_epoch(&empty_ctx, &mut rng);
        assert_eq!(loss, 0.0);
        assert!(
            model.cached_users.is_none() && model.cached_items.is_none(),
            "caches must be dropped on every train_epoch exit path"
        );
    }

    /// In-module smoke check of the subgraph engine; the full cross-mode
    /// differential test lives in `tests/batch_local_diff.rs`.
    #[test]
    fn batch_local_and_full_graph_training_match() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut full_cfg = fast_config();
        full_cfg.batch_local = false;
        let mut local = Ckat::new(&ctx, &fast_config());
        let mut full = Ckat::new(&ctx, &full_cfg);
        let mut rng_a = seeded_rng(8);
        let mut rng_b = seeded_rng(8);
        for _ in 0..2 {
            let la = local.train_epoch(&ctx, &mut rng_a);
            let lf = full.train_epoch(&ctx, &mut rng_b);
            assert_eq!(la, lf, "losses must match under keep_prob = 1.0");
        }
        assert_eq!(
            local.store.value(local.ent_emb).as_slice(),
            full.store.value(full.ent_emb).as_slice(),
            "entity embeddings must stay bitwise identical across modes"
        );
    }

    #[test]
    fn epoch_profile_reports_subgraph_work() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Ckat::new(&ctx, &fast_config());
        assert!(model.take_epoch_profile().is_none());
        let mut rng = seeded_rng(9);
        model.train_epoch(&ctx, &mut rng);
        let prof = model.take_epoch_profile().expect("profile recorded");
        assert!(model.take_epoch_profile().is_none(), "profile is consumed once");
        assert!(prof.batches >= 1);
        assert!(prof.gathered_rows <= prof.full_rows);
        assert!(prof.gathered_edges <= prof.full_edges);
        assert!(prof.forward_flops > 0);
        assert!(prof.row_fraction() <= 1.0 && prof.edge_fraction() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one propagation layer")]
    fn zero_layers_rejected() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut cfg = fast_config();
        cfg.layer_dims = vec![];
        let _ = Ckat::new(&ctx, &cfg);
    }

    #[test]
    fn hub_selection_respects_percentile() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };

        // Percentile 0.0: everything above the *minimum* degree is a hub.
        let mut cfg = fast_config();
        cfg.hub_percentile = 0.0;
        let model = Ckat::new(&ctx, &cfg);
        assert!(!model.hub_ids.is_empty(), "toy world has unequal degrees");
        assert!(model.hub_ids.windows(2).all(|w| w[0] < w[1]));
        for (g, &flag) in model.hub_flags.iter().enumerate() {
            assert_eq!(flag, model.hub_ids.binary_search(&g).is_ok());
        }
        let min_deg =
            (0..ckg.n_entities()).map(|g| ckg.offsets[g + 1] - ckg.offsets[g]).min().unwrap();
        for &g in model.hub_ids.iter() {
            assert!(ckg.offsets[g + 1] - ckg.offsets[g] > min_deg);
        }

        // Percentile ≥ 1.0 disables hub selection entirely.
        let mut cfg = fast_config();
        cfg.hub_percentile = 1.0;
        let model = Ckat::new(&ctx, &cfg);
        assert!(model.hub_ids.is_empty() && model.hub_flags.is_empty());

        // So does turning the cache off.
        let mut cfg = fast_config();
        cfg.hub_percentile = 0.0;
        cfg.hub_cache = false;
        let model = Ckat::new(&ctx, &cfg);
        assert!(model.hub_ids.is_empty());
    }

    /// The cached hub values are the exact representations their full
    /// neighborhoods produce, so the forward pass of the *first*
    /// macro-step (before any stop-gradient apply can diverge the
    /// trajectories) must be bitwise identical with the cache on or off.
    /// Toy world fits one macro-step per epoch (3 batches ≤ MACRO_WIDTH).
    #[test]
    fn hub_cache_first_macro_step_loss_is_bitwise_exact() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        assert!(ctx.batches_per_epoch(ModelConfig::fast().batch_size) <= MACRO_WIDTH);
        let mut cfg = fast_config();
        cfg.base.replicas = 1;
        cfg.hub_percentile = 0.25;
        let mut cached = Ckat::new(&ctx, &cfg);
        assert!(!cached.hub_ids.is_empty(), "percentile 0.25 must select hubs");
        let mut plain_cfg = cfg.clone();
        plain_cfg.hub_cache = false;
        let mut plain = Ckat::new(&ctx, &plain_cfg);

        let mut rng_a = seeded_rng(11);
        let mut rng_b = seeded_rng(11);
        let loss_cached = cached.train_epoch(&ctx, &mut rng_a);
        let loss_plain = plain.train_epoch(&ctx, &mut rng_b);
        assert_eq!(
            loss_cached.to_bits(),
            loss_plain.to_bits(),
            "first-macro-step losses diverged: {loss_cached} vs {loss_plain}"
        );
        let prof = cached.take_epoch_profile().expect("profile recorded");
        assert!(prof.hub_cache_ns > 0, "cache refresh must be timed");
    }

    /// The cache is stamped with the parameter/attention versions it was
    /// computed against and must be discarded when either moves.
    #[test]
    fn hub_cache_invalidates_on_stamp_movement() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut cfg = fast_config();
        cfg.base.replicas = 1;
        cfg.hub_percentile = 0.0;
        let mut model = Ckat::new(&ctx, &cfg);
        let mut rng = seeded_rng(12);

        model.train_epoch(&ctx, &mut rng);
        let c1 = model.hub_cache.as_ref().expect("cache populated");
        assert_eq!(c1.att_epoch, model.att_epoch);
        assert!(
            c1.param_version < model.param_version,
            "the apply after the refresh must stale the cache"
        );
        let stamp1 = (c1.param_version, c1.att_epoch);

        // Next epoch refreshes attention and applies again — both stamps
        // must move, i.e. the cache was recomputed, not reused.
        model.train_epoch(&ctx, &mut rng);
        let c2 = model.hub_cache.as_ref().expect("cache repopulated");
        assert!(c2.att_epoch > stamp1.1, "attention refresh must bump att_epoch");
        assert!(c2.param_version > stamp1.0);

        // Restoring a checkpoint drops the cache outright.
        let state = model.save_state();
        model.load_state(&state).unwrap();
        assert!(model.hub_cache.is_none(), "load_state must drop the hub cache");
    }

    /// End-to-end: replica training with the hub cache active still
    /// learns the toy world.
    #[test]
    fn replica_hub_cache_training_learns() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut cfg = fast_config();
        cfg.base.replicas = 2;
        cfg.hub_percentile = 0.5;
        let mut model = Ckat::new(&ctx, &cfg);
        assert!(!model.hub_ids.is_empty());
        let mut rng = seeded_rng(13);
        let first = model.train_epoch(&ctx, &mut rng);
        let mut last = first;
        for _ in 0..30 {
            last = model.train_epoch(&ctx, &mut rng);
        }
        assert!(last < first, "loss should fall with the hub cache on: {first} -> {last}");
        model.prepare_eval(&ctx);
        let a = auc(&model, &inter);
        assert!(a > 0.7, "replica+hub-cache AUC {a}");
    }
}
