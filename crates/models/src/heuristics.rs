//! Non-learned heuristic baselines — not part of the paper's Table II,
//! but indispensable sanity anchors for any recommender study: a learned
//! model that cannot beat raw popularity or item co-occurrence is not
//! learning anything useful.
//!
//! audit: module unwrap — item/co-occurrence tables are indexed by ids bounded
//! at CKG construction; the baseline unit tests cover every lookup path.

use crate::common::TrainContext;
use crate::Recommender;
use facility_kg::Id;
use rand::rngs::StdRng;

/// Ranks every item by its global training popularity (identical list for
/// every user, minus their own train items at ranking time).
pub struct MostPopular {
    scores: Vec<f32>,
}

impl MostPopular {
    /// Count training interactions per item.
    pub fn new(ctx: &TrainContext<'_>) -> Self {
        let mut scores = vec![0.0f32; ctx.inter.n_items];
        for &(_, i) in &ctx.inter.train_pairs {
            scores[i as usize] += 1.0;
        }
        Self { scores }
    }
}

impl Recommender for MostPopular {
    fn name(&self) -> String {
        "MostPopular".into()
    }
    fn train_epoch(&mut self, _ctx: &TrainContext<'_>, _rng: &mut StdRng) -> f32 {
        0.0 // nothing to learn
    }
    fn prepare_eval(&mut self, ctx: &TrainContext<'_>) {
        *self = Self::new(ctx);
    }
    fn score_items(&self, _user: Id) -> Vec<f32> {
        self.scores.clone()
    }
    fn num_parameters(&self) -> usize {
        0
    }
}

/// Item-based collaborative filtering (Sarwar et al. 2001 — the paper's
/// reference \[26\]): cosine similarity over item co-occurrence, scored as
/// `ŷ(u, i) = Σ_{j ∈ train(u)} sim(i, j)`.
pub struct ItemKnn {
    /// Dense item–item cosine similarity (n_items²; fine at facility
    /// catalog sizes).
    sim: Vec<f32>,
    n_items: usize,
    train: Vec<Vec<Id>>,
}

impl ItemKnn {
    /// Build similarities from the training interactions.
    pub fn new(ctx: &TrainContext<'_>) -> Self {
        let n_items = ctx.inter.n_items;
        let mut co = vec![0u32; n_items * n_items];
        let mut deg = vec![0u32; n_items];
        for items in &ctx.inter.train {
            for &i in items {
                deg[i as usize] += 1;
            }
            for (a_idx, &a) in items.iter().enumerate() {
                for &b in &items[a_idx + 1..] {
                    co[a as usize * n_items + b as usize] += 1;
                    co[b as usize * n_items + a as usize] += 1;
                }
            }
        }
        let sim = (0..n_items * n_items)
            .map(|k| {
                let (i, j) = (k / n_items, k % n_items);
                let d = (deg[i] as f32 * deg[j] as f32).sqrt();
                if d > 0.0 {
                    co[k] as f32 / d
                } else {
                    0.0
                }
            })
            .collect();
        Self { sim, n_items, train: ctx.inter.train.clone() }
    }
}

impl Recommender for ItemKnn {
    fn name(&self) -> String {
        "ItemKNN".into()
    }
    fn train_epoch(&mut self, _ctx: &TrainContext<'_>, _rng: &mut StdRng) -> f32 {
        0.0
    }
    fn prepare_eval(&mut self, ctx: &TrainContext<'_>) {
        *self = Self::new(ctx);
    }
    fn score_items(&self, user: Id) -> Vec<f32> {
        let mut scores = vec![0.0f32; self.n_items];
        for &j in &self.train[user as usize] {
            let row = &self.sim[j as usize * self.n_items..(j as usize + 1) * self.n_items];
            for (s, &v) in scores.iter_mut().zip(row) {
                *s += v;
            }
        }
        scores
    }
    fn num_parameters(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::toy_world;
    use facility_eval_shim::evaluate_shim;

    /// Minimal local re-implementation of recall@K to avoid a circular
    /// dev-dependency on facility-eval.
    mod facility_eval_shim {
        use crate::Recommender;
        use facility_kg::Interactions;

        pub fn evaluate_shim(model: &dyn Recommender, inter: &Interactions, k: usize) -> f64 {
            let mut total = 0.0;
            let mut n = 0;
            for u in inter.test_users() {
                let scores = model.score_items(u);
                let mut order: Vec<u32> =
                    (0..inter.n_items as u32).filter(|i| !inter.contains_train(u, *i)).collect();
                order.sort_by(|&a, &b| {
                    scores[b as usize].partial_cmp(&scores[a as usize]).unwrap().then(a.cmp(&b))
                });
                let hits = order[..k.min(order.len())]
                    .iter()
                    .filter(|i| inter.contains_test(u, **i))
                    .count();
                total += hits as f64 / inter.test[u as usize].len() as f64;
                n += 1;
            }
            if n == 0 {
                0.0
            } else {
                total / n as f64
            }
        }
    }

    #[test]
    fn most_popular_ranks_by_frequency() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let model = MostPopular::new(&ctx);
        let scores = model.score_items(0);
        // Item 0 appears twice in training, item 5 once.
        assert!(scores[0] > scores[5]);
    }

    #[test]
    fn item_knn_similarity_is_symmetric_and_zero_diag_safe() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let model = ItemKnn::new(&ctx);
        let n = model.n_items;
        for i in 0..n {
            for j in 0..n {
                assert!((model.sim[i * n + j] - model.sim[j * n + i]).abs() < 1e-6);
            }
        }
        assert!(model.sim.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn heuristics_score_above_zero_on_structured_data() {
        use crate::test_fixtures::structured_world;
        let (inter, ckg) = structured_world(20, 24, 3, 5);
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut pop = MostPopular::new(&ctx);
        let mut knn = ItemKnn::new(&ctx);
        pop.prepare_eval(&ctx);
        knn.prepare_eval(&ctx);
        let r_pop = evaluate_shim(&pop, &inter, 8);
        let r_knn = evaluate_shim(&knn, &inter, 8);
        assert!(r_pop > 0.0);
        // Co-occurrence should beat raw popularity on block-structured data.
        assert!(r_knn > r_pop * 0.8, "ItemKNN {r_knn} vs popularity {r_pop}");
    }
}
