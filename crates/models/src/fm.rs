//! FM — factorization machine (Rendle et al. 2011) over the CKG feature
//! space.
//! audit: module unwrap — embedding rows are indexed by ids bounded at CKG
//! construction; the model parity/unit tests cover every lookup path.
//!
//! Following the paper's setup, "user IDs, data objects, and CKG entities"
//! are the input features: a sample `(u, v)` activates the user feature,
//! the item feature, and the item's directly-connected attribute entities.
//! Feature ids coincide with CKG entity ids, so one embedding table covers
//! all of them. The second-order interaction uses the pooled identity
//! `Σ_{f<f'} ⟨v_f, v_f'⟩ = ½(‖Σ v_f‖² − Σ ‖v_f‖²)`.

use crate::common::{ModelConfig, TrainContext};
use crate::Recommender;
use facility_autograd::{Adam, ParamId, ParamStore, Tape, Var};
use facility_ckpt::{CkptError, ModelState};
use facility_kg::sampling::sample_bpr_batch;
use facility_kg::Id;
use facility_linalg::{init, seeded_rng, Matrix};
use rand::rngs::StdRng;
use std::sync::Arc;

/// The FM model.
pub struct Fm {
    store: ParamStore,
    adam: Adam,
    /// Linear feature weights `w` (`n_entities × 1`).
    w: ParamId,
    /// Feature embeddings `V` (`n_entities × d`).
    v: ParamId,
    config: ModelConfig,
    /// Entity-id feature lists per item: `[item_entity, attr...]`.
    item_features: Vec<Vec<usize>>,
    n_users: usize,
    n_items: usize,
    cached_scores: Option<Matrix>, // (n_users × n_items) — filled lazily per eval
}

/// Flattened feature indices and segment ids for a batch of samples.
pub(crate) struct FeatureBatch {
    pub indices: Vec<usize>,
    pub seg_of_row: Arc<Vec<usize>>,
    pub n_samples: usize,
}

impl FeatureBatch {
    /// Build `[user, item-features...]` feature lists for `(user, item)`
    /// pairs.
    pub(crate) fn build(users: &[usize], items: &[usize], item_features: &[Vec<usize>]) -> Self {
        let mut indices = Vec::with_capacity(users.len() * 4);
        let mut seg = Vec::with_capacity(users.len() * 4);
        for (s, (&u, &i)) in users.iter().zip(items).enumerate() {
            indices.push(u);
            seg.push(s);
            for &f in &item_features[i] {
                indices.push(f);
                seg.push(s);
            }
        }
        Self { indices, seg_of_row: Arc::new(seg), n_samples: users.len() }
    }
}

/// FM score head shared with NFM's linear part: returns
/// `(linear (B×1), pooled bilinear vector (B×d))` on the tape.
pub(crate) fn fm_terms(t: &mut Tape, w: Var, v: Var, fb: &FeatureBatch) -> (Var, Var) {
    let emb = t.gather_rows(v, &fb.indices); // (F × d)
    let sums = t.segment_sum(emb, Arc::clone(&fb.seg_of_row), fb.n_samples); // (B × d)
    let sq_of_sum = t.mul(sums, sums); // (B × d)
    let emb_sq = t.mul(emb, emb);
    let sum_of_sq = t.segment_sum(emb_sq, Arc::clone(&fb.seg_of_row), fb.n_samples); // (B × d)
    let diff = t.sub(sq_of_sum, sum_of_sq);
    let bilinear_vec = t.scale(diff, 0.5); // (B × d)

    let wf = t.gather_rows(w, &fb.indices); // (F × 1)
    let linear = t.segment_sum(wf, Arc::clone(&fb.seg_of_row), fb.n_samples); // (B × 1)
    (linear, bilinear_vec)
}

impl Fm {
    /// Initialize from the training context.
    pub fn new(ctx: &TrainContext<'_>, config: &ModelConfig) -> Self {
        let mut rng = seeded_rng(config.seed);
        let d = config.embed_dim;
        let n_ent = ctx.ckg.n_entities();
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(n_ent, 1));
        let v = store.add("v", init::xavier_uniform(n_ent, d, &mut rng));
        let adam = Adam::default_for(&store, config.lr);
        // Item feature lists: the item's own entity plus its attributes.
        let attrs = ctx.item_attribute_entities();
        let item_features: Vec<Vec<usize>> = (0..ctx.ckg.n_items)
            .map(|i| {
                let mut f = vec![ctx.ckg.item_entity(i as Id)];
                f.extend_from_slice(&attrs[i]);
                f
            })
            .collect();
        Self {
            store,
            adam,
            w,
            v,
            config: config.clone(),
            item_features,
            n_users: ctx.inter.n_users,
            n_items: ctx.inter.n_items,
            cached_scores: None,
        }
    }

    fn batch_scores(&self, t: &mut Tape, w: Var, v: Var, users: &[usize], items: &[usize]) -> Var {
        let fb = FeatureBatch::build(users, items, &self.item_features);
        let (linear, bilinear_vec) = fm_terms(t, w, v, &fb);
        // Reduce the bilinear vector to a scalar per sample: Σ_d.
        let ones = t.constant(Matrix::filled(bilinear_vec_cols(t, bilinear_vec), 1, 1.0));
        let bilinear = t.matmul(bilinear_vec, ones); // (B × 1)
        t.add(linear, bilinear)
    }
}

fn bilinear_vec_cols(t: &Tape, v: Var) -> usize {
    t.value(v).cols()
}

impl Recommender for Fm {
    fn name(&self) -> String {
        "FM".into()
    }

    fn train_epoch(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32 {
        let n_batches = ctx.batches_per_epoch(self.config.batch_size);
        let mut total = 0.0;
        for _ in 0..n_batches {
            let batch = sample_bpr_batch(ctx.inter, self.config.batch_size, rng);
            if batch.is_empty() {
                return 0.0;
            }
            let users: Vec<usize> = batch.iter().map(|s| s.user as usize).collect();
            let pos: Vec<usize> = batch.iter().map(|s| s.pos as usize).collect();
            let neg: Vec<usize> = batch.iter().map(|s| s.neg as usize).collect();

            let mut t = Tape::new();
            let w = t.leaf(self.store.value(self.w).clone());
            let v = t.leaf(self.store.value(self.v).clone());
            let y_pos = self.batch_scores(&mut t, w, v, &users, &pos);
            let y_neg = self.batch_scores(&mut t, w, v, &users, &neg);
            let diff = t.sub(y_pos, y_neg);
            let ls = t.log_sigmoid(diff);
            let s = t.sum_all(ls);
            let bpr = t.scale(s, -1.0 / batch.len() as f32);
            let rv = t.frobenius_sq(v);
            let rw = t.frobenius_sq(w);
            let reg0 = t.add(rv, rw);
            let reg = t.scale(reg0, self.config.l2);
            let loss = t.add(bpr, reg);
            total += t.value(loss)[(0, 0)];
            t.backward(loss);
            let grads: Vec<_> = [(self.w, w), (self.v, v)]
                .into_iter()
                .filter_map(|(p, var)| t.take_grad(var).map(|g| (p, g.into())))
                .collect();
            self.store.apply(&mut self.adam, &grads);
        }
        self.cached_scores = None;
        total / n_batches as f32
    }

    fn prepare_eval(&mut self, _ctx: &TrainContext<'_>) {
        // Score all (user, item) pairs, one forward pass per user block,
        // users fanned out with rayon (each thread builds its own tape).
        use rayon::prelude::*;
        let all_items: Vec<usize> = (0..self.n_items).collect();
        let rows: Vec<Vec<f32>> = (0..self.n_users)
            .into_par_iter()
            .map(|u| {
                let users = vec![u; self.n_items];
                let mut t = Tape::new();
                let w = t.constant(self.store.value(self.w).clone());
                let v = t.constant(self.store.value(self.v).clone());
                let y = self.batch_scores(&mut t, w, v, &users, &all_items);
                t.value(y).as_slice().to_vec()
            })
            .collect();
        let mut scores = Matrix::zeros(self.n_users, self.n_items);
        for (u, row) in rows.into_iter().enumerate() {
            scores.row_mut(u).copy_from_slice(&row);
        }
        self.cached_scores = Some(scores);
    }

    fn score_items(&self, user: Id) -> Vec<f32> {
        self.cached_scores.as_ref().expect("prepare_eval not called").row(user as usize).to_vec()
    }

    fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn save_state(&self) -> ModelState {
        ModelState::capture(&self.store, &self.adam)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CkptError> {
        state.restore(&mut self.store, &mut self.adam)?;
        self.cached_scores = None;
        Ok(())
    }

    fn scale_lr(&mut self, factor: f32) {
        self.adam.lr *= factor;
    }

    fn params_finite(&mut self) -> bool {
        self.store.touched_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{auc, toy_world};

    #[test]
    fn feature_batch_layout() {
        let feats = vec![vec![10, 20], vec![11]];
        let fb = FeatureBatch::build(&[0, 1], &[0, 1], &feats);
        assert_eq!(fb.indices, vec![0, 10, 20, 1, 11]);
        assert_eq!(fb.seg_of_row.as_ref(), &vec![0, 0, 0, 1, 1]);
        assert_eq!(fb.n_samples, 2);
    }

    #[test]
    fn fm_learns_toy_world() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Fm::new(&ctx, &ModelConfig::fast());
        let mut rng = seeded_rng(1);
        let first = model.train_epoch(&ctx, &mut rng);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_epoch(&ctx, &mut rng);
        }
        assert!(last < first, "FM loss should fall: {first} -> {last}");
        model.prepare_eval(&ctx);
        let a = auc(&model, &inter);
        assert!(a > 0.7, "FM AUC {a}");
    }

    #[test]
    fn pooled_identity_matches_explicit_pairs() {
        // ½(‖Σv‖² − Σ‖v‖²) must equal Σ_{f<f'} ⟨v_f, v_f'⟩.
        let rows = [[1.0f32, 2.0], [0.5, -1.0], [3.0, 0.0]];
        let mut explicit = 0.0;
        for a in 0..3 {
            for b in (a + 1)..3 {
                explicit += rows[a][0] * rows[b][0] + rows[a][1] * rows[b][1];
            }
        }
        let sum = [rows[0][0] + rows[1][0] + rows[2][0], rows[0][1] + rows[1][1] + rows[2][1]];
        let sq_of_sum = sum[0] * sum[0] + sum[1] * sum[1];
        let sum_of_sq: f32 = rows.iter().map(|r| r[0] * r[0] + r[1] * r[1]).sum();
        let pooled = 0.5 * (sq_of_sum - sum_of_sq);
        assert!((pooled - explicit).abs() < 1e-5);
    }
}
