//! Shared fixtures for the per-model unit tests (compiled only under
//! `cfg(test)`).

use crate::Recommender;
use facility_kg::{Ckg, CkgBuilder, Id, Interactions, KnowledgeSource, SourceMask};
use facility_linalg::seeded_rng;
use rand::Rng;

/// A small world with obvious structure: items with the same `type`
/// attribute are co-queried, and two user pairs are co-located. 4 users ×
/// 6 items keeps every model's epoch under a millisecond.
pub(crate) fn toy_world() -> (Interactions, Ckg) {
    let events: Vec<(Id, Id)> =
        vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 3), (2, 2), (2, 4), (3, 1), (3, 5)];
    let inter = Interactions::split(4, 6, &events, 0.0, &mut seeded_rng(0));
    let mut b = CkgBuilder::new(4, 6);
    b.add_interactions(&inter.train_pairs);
    b.add_user_user(&[(0, 1), (2, 3)]);
    for i in 0..6u32 {
        b.add_item_attribute(KnowledgeSource::Loc, "locatedAt", i, format!("site:{}", i % 2));
        b.add_item_attribute(KnowledgeSource::Dkg, "hasDataType", i, format!("type:{}", i % 3));
    }
    let ckg = b.build(SourceMask::all());
    (inter, ckg)
}

/// A slightly larger world where knowledge correlates strongly with
/// interactions: users query items that share a data type. Useful for
/// asserting that knowledge-aware models learn the pattern.
pub(crate) fn structured_world(
    n_users: usize,
    n_items: usize,
    n_types: usize,
    seed: u64,
) -> (Interactions, Ckg) {
    let mut rng = seeded_rng(seed);
    let item_type: Vec<usize> = (0..n_items).map(|i| i % n_types).collect();
    let mut events: Vec<(Id, Id)> = Vec::new();
    for u in 0..n_users {
        let pref = u % n_types;
        let in_type: Vec<Id> =
            (0..n_items as Id).filter(|&i| item_type[i as usize] == pref).collect();
        for _ in 0..6 {
            // 80% on-preference, 20% exploration.
            let i = if rng.gen::<f64>() < 0.8 {
                in_type[rng.gen_range(0..in_type.len())]
            } else {
                rng.gen_range(0..n_items) as Id
            };
            events.push((u as Id, i));
        }
    }
    let inter = Interactions::split(n_users, n_items, &events, 0.25, &mut rng);
    let mut b = CkgBuilder::new(n_users, n_items);
    b.add_interactions(&inter.train_pairs);
    for i in 0..n_items as Id {
        b.add_item_attribute(
            KnowledgeSource::Dkg,
            "hasDataType",
            i,
            format!("type:{}", item_type[i as usize]),
        );
    }
    (inter.clone(), b.build(SourceMask::all()))
}

/// Training-set AUC: the fraction of (train positive, sampled negative)
/// pairs the model orders correctly. 0.5 is chance.
pub(crate) fn auc(model: &dyn Recommender, inter: &Interactions) -> f64 {
    let mut rng = seeded_rng(999);
    let mut wins = 0usize;
    let mut total = 0usize;
    for u in 0..inter.n_users as Id {
        if inter.train[u as usize].is_empty() {
            continue;
        }
        let scores = model.score_items(u);
        for &i in &inter.train[u as usize] {
            for _ in 0..4 {
                let j = rng.gen_range(0..inter.n_items) as Id;
                if inter.contains_train(u, j) {
                    continue;
                }
                total += 1;
                if scores[i as usize] > scores[j as usize] {
                    wins += 1;
                }
            }
        }
    }
    if total == 0 {
        return 0.5;
    }
    wins as f64 / total as f64
}

/// Held-out AUC on the test split.
pub(crate) fn test_auc(model: &dyn Recommender, inter: &Interactions) -> f64 {
    let mut rng = seeded_rng(998);
    let mut wins = 0usize;
    let mut total = 0usize;
    for u in 0..inter.n_users as Id {
        if inter.test[u as usize].is_empty() {
            continue;
        }
        let scores = model.score_items(u);
        for &i in &inter.test[u as usize] {
            for _ in 0..4 {
                let j = rng.gen_range(0..inter.n_items) as Id;
                if inter.contains_train(u, j) || inter.contains_test(u, j) {
                    continue;
                }
                total += 1;
                if scores[i as usize] > scores[j as usize] {
                    wins += 1;
                }
            }
        }
    }
    if total == 0 {
        return 0.5;
    }
    wins as f64 / total as f64
}
