//! KGCN — knowledge graph convolutional network (Wang et al. 2019),
//! propagation-based baseline.
//! audit: module unwrap — embedding rows are indexed by ids bounded at CKG
//! construction; the model parity/unit tests cover every lookup path.
//!
//! For a candidate item, KGCN samples a fixed-size receptive field in the
//! KG (K neighbors per hop) and aggregates neighbor embeddings inward,
//! weighting each neighbor by a *user-specific* relation score
//! `softmax_k(e_uᵀ e_r)`. Aggregation is the sum aggregator
//! `σ(W(e_self + e_N) + b)` with ReLU on inner layers and tanh on the
//! final layer, as in the reference implementation.

//! KGCN's receptive field is *sampled* (K neighbors per hop), so its
//! propagation is naturally batch-local: `item_reprs` gathers only the
//! `B·K^h` level rows it needs, never the full entity table. This module
//! therefore only needed the invalidation fix and the [`EpochProfile`]
//! instrumentation to line up with CKAT's batch-local engine.

use crate::common::{ModelConfig, TrainContext};
use crate::profile::EpochProfile;
use crate::Recommender;
use facility_autograd::{Adam, ParamId, ParamStore, Tape, Var};
use facility_ckpt::{CkptError, ModelState};
use facility_kg::sampling::sample_bpr_batch;
use facility_kg::{Ckg, Id};
use facility_linalg::{init, seeded_rng, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// KGCN hyperparameters.
#[derive(Debug, Clone)]
pub struct KgcnConfig {
    /// Shared hyperparameters.
    pub base: ModelConfig,
    /// Neighbors sampled per hop (K).
    pub n_neighbors: usize,
    /// Receptive-field depth (the paper compares propagation models at
    /// depth 2).
    pub n_layers: usize,
}

impl From<&ModelConfig> for KgcnConfig {
    fn from(base: &ModelConfig) -> Self {
        Self { base: base.clone(), n_neighbors: 8, n_layers: 2 }
    }
}

/// Fixed `(relation, tail)` neighbor samples, one vec per entity.
type NeighborFields = Arc<Vec<Vec<(u32, u32)>>>;

/// The KGCN model.
pub struct Kgcn {
    store: ParamStore,
    adam: Adam,
    user_emb: ParamId,
    ent_emb: ParamId,
    rel_emb: ParamId,
    /// Per-layer aggregation weights (`d × d`) and biases (`1 × d`).
    layer_w: Vec<ParamId>,
    layer_b: Vec<ParamId>,
    config: KgcnConfig,
    n_items: usize,
    /// Fixed receptive-field sample per item entity for evaluation:
    /// `eval_neighbors[e] = [(rel, tail); K]`, sampled once.
    eval_neighbors: Option<NeighborFields>,
    /// Instrumentation from the most recent epoch, consumed by
    /// [`Recommender::take_epoch_profile`].
    last_profile: Option<EpochProfile>,
}

/// Sample `k` `(rel, tail)` neighbors of `entity` with replacement;
/// entities without edges self-loop through the Interact relation.
fn sample_neighbors(ckg: &Ckg, entity: usize, k: usize, rng: &mut impl Rng) -> Vec<(u32, u32)> {
    let deg = ckg.degree(entity);
    if deg == 0 {
        return vec![(0, entity as u32); k];
    }
    let lo = ckg.offsets[entity];
    (0..k)
        .map(|_| {
            let e = lo + rng.gen_range(0..deg);
            (ckg.rels[e], ckg.tails[e])
        })
        .collect()
}

impl Kgcn {
    /// Initialize from the training context.
    pub fn new(ctx: &TrainContext<'_>, config: &KgcnConfig) -> Self {
        let mut rng = seeded_rng(config.base.seed);
        let d = config.base.embed_dim;
        let mut store = ParamStore::new();
        let user_emb = store.add("user_emb", init::xavier_uniform(ctx.inter.n_users, d, &mut rng));
        let ent_emb = store.add("ent_emb", init::xavier_uniform(ctx.ckg.n_entities(), d, &mut rng));
        let rel_emb = store
            .add("rel_emb", init::xavier_uniform(ctx.ckg.n_relations_with_inverse(), d, &mut rng));
        let mut layer_w = Vec::new();
        let mut layer_b = Vec::new();
        for l in 0..config.n_layers {
            layer_w.push(store.add(format!("w{l}"), init::xavier_uniform(d, d, &mut rng)));
            layer_b.push(store.add(format!("b{l}"), Matrix::zeros(1, d)));
        }
        let adam = Adam::default_for(&store, config.base.lr);
        Self {
            store,
            adam,
            user_emb,
            ent_emb,
            rel_emb,
            layer_w,
            layer_b,
            config: config.clone(),
            n_items: ctx.inter.n_items,
            eval_neighbors: None,
            last_profile: None,
        }
    }

    /// Rows/edges one `item_reprs` call places on the tape for a batch of
    /// `b` seeds: level h holds `b·K^h` rows, each non-root row is one
    /// sampled edge.
    fn receptive_field_size(&self, b: usize) -> (u64, u64) {
        let k = self.config.n_neighbors as u64;
        let mut rows = 0u64;
        let mut level = b as u64;
        for _ in 0..=self.config.n_layers {
            rows += level;
            level *= k;
        }
        (rows, rows - b as u64)
    }

    /// Build the user-specific representations of `items` for `users`
    /// (parallel index slices of length B) on the tape. `sample` provides
    /// the per-entity neighbor draw.
    #[allow(clippy::too_many_arguments)]
    fn item_reprs(
        &self,
        t: &mut Tape,
        uemb: Var,
        eemb: Var,
        remb: Var,
        layer_w: &[Var],
        layer_b: &[Var],
        users: &[usize],
        item_entities: &[usize],
        mut sample: impl FnMut(usize) -> Vec<(u32, u32)>,
    ) -> Var {
        let k = self.config.n_neighbors;
        let n_layers = self.config.n_layers;
        let b = users.len();

        // Expand the receptive field: level 0 = items, level h = K^h nodes.
        let mut levels: Vec<Vec<usize>> = vec![item_entities.to_vec()];
        let mut level_rels: Vec<Vec<usize>> = Vec::new(); // relation of the edge to the parent
        for _hop in 0..n_layers {
            let parents = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(parents.len() * k);
            let mut rels = Vec::with_capacity(parents.len() * k);
            for &p in parents {
                for (r, tail) in sample(p) {
                    next.push(tail as usize);
                    rels.push(r as usize);
                }
            }
            levels.push(next);
            level_rels.push(rels);
        }

        // Raw embeddings per level.
        let mut reprs: Vec<Var> = levels.iter().map(|ents| t.gather_rows(eemb, ents)).collect();

        // Aggregate inward: children at level h+1 into parents at level h.
        for hop in (0..n_layers).rev() {
            let n_parents = levels[hop].len();
            let n_children = levels[hop + 1].len();
            debug_assert_eq!(n_children, n_parents * k);
            // User row per child edge: child c belongs to sample c / (K^(hop+1)).
            let per_sample = n_children / b;
            let user_of_child: Vec<usize> =
                (0..n_children).map(|c| users[c / per_sample]).collect();
            let u_rows = t.gather_rows(uemb, &user_of_child);
            let r_rows = t.gather_rows(remb, &level_rels[hop]);
            let pi = t.rowwise_dot(u_rows, r_rows); // (C × 1)
            let offsets: Arc<Vec<usize>> = Arc::new((0..=n_parents).map(|p| p * k).collect());
            let att = t.segment_softmax(pi, offsets);
            let weighted = t.mul_broadcast_col(reprs[hop + 1], att);
            let seg_of_child: Arc<Vec<usize>> = Arc::new((0..n_children).map(|c| c / k).collect());
            let agg = t.segment_sum(weighted, seg_of_child, n_parents);
            let mixed = t.add(reprs[hop], agg);
            let z = t.matmul(mixed, layer_w[hop]);
            let zb = t.add_broadcast_row(z, layer_b[hop]);
            reprs[hop] = if hop == 0 { t.tanh(zb) } else { t.leaky_relu(zb) };
        }
        reprs[0]
    }
}

impl Recommender for Kgcn {
    fn name(&self) -> String {
        "KGCN".into()
    }

    fn train_epoch(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32 {
        let mut prof = EpochProfile::default();
        let n_batches = ctx.batches_per_epoch(self.config.base.batch_size);
        let full_edges = ctx.ckg.n_edges() as u64;
        let mut total = 0.0;
        for _ in 0..n_batches {
            let clock = Instant::now();
            let batch = sample_bpr_batch(ctx.inter, self.config.base.batch_size, rng);
            prof.sampling_ns += clock.elapsed().as_nanos() as u64;
            if batch.is_empty() {
                // Fall through to the invalidation below instead of
                // early-returning around it (same staleness class as
                // CKAT's eval-cache bug).
                break;
            }
            prof.batches += 1;
            prof.full_rows += ctx.ckg.n_entities() as u64;
            prof.full_edges += full_edges;
            let (rf_rows, rf_edges) = self.receptive_field_size(batch.len());
            // One receptive field each for the positive and negative items.
            prof.gathered_rows += 2 * rf_rows;
            prof.gathered_edges += 2 * rf_edges;
            let users: Vec<usize> = batch.iter().map(|s| s.user as usize).collect();
            let pos: Vec<usize> = batch.iter().map(|s| ctx.ckg.item_entity(s.pos)).collect();
            let neg: Vec<usize> = batch.iter().map(|s| ctx.ckg.item_entity(s.neg)).collect();

            let clock = Instant::now();
            let mut t = Tape::new();
            let uemb = t.leaf(self.store.value(self.user_emb).clone());
            let eemb = t.leaf(self.store.value(self.ent_emb).clone());
            let remb = t.leaf(self.store.value(self.rel_emb).clone());
            let lw: Vec<Var> =
                self.layer_w.iter().map(|&p| t.leaf(self.store.value(p).clone())).collect();
            let lb: Vec<Var> =
                self.layer_b.iter().map(|&p| t.leaf(self.store.value(p).clone())).collect();

            let k = self.config.n_neighbors;
            let pos_rep = self.item_reprs(&mut t, uemb, eemb, remb, &lw, &lb, &users, &pos, |e| {
                sample_neighbors(ctx.ckg, e, k, rng)
            });
            let neg_rep = self.item_reprs(&mut t, uemb, eemb, remb, &lw, &lb, &users, &neg, |e| {
                sample_neighbors(ctx.ckg, e, k, rng)
            });
            let u = t.gather_rows(uemb, &users);
            let y_pos = t.rowwise_dot(u, pos_rep);
            let y_neg = t.rowwise_dot(u, neg_rep);
            let diff = t.sub(y_pos, y_neg);
            let ls = t.log_sigmoid(diff);
            let s = t.sum_all(ls);
            let bpr = t.scale(s, -1.0 / batch.len() as f32);
            let ru = t.frobenius_sq(u);
            let reg = t.scale(ru, self.config.base.l2 / batch.len() as f32);
            let loss = t.add(bpr, reg);
            total += t.value(loss)[(0, 0)];
            prof.forward_ns += clock.elapsed().as_nanos() as u64;
            let clock = Instant::now();
            t.backward(loss);
            let mut grads: Vec<_> =
                [(self.user_emb, uemb), (self.ent_emb, eemb), (self.rel_emb, remb)]
                    .into_iter()
                    .filter_map(|(p, var)| t.take_grad(var).map(|g| (p, g.into())))
                    .collect();
            for (&p, &var) in self.layer_w.iter().zip(&lw) {
                if let Some(g) = t.take_grad(var) {
                    grads.push((p, g.into()));
                }
            }
            for (&p, &var) in self.layer_b.iter().zip(&lb) {
                if let Some(g) = t.take_grad(var) {
                    grads.push((p, g.into()));
                }
            }
            self.store.apply(&mut self.adam, &grads);
            prof.backward_ns += clock.elapsed().as_nanos() as u64;
        }
        // Invalidate the fixed eval receptive field on every exit path.
        self.eval_neighbors = None;
        self.last_profile = Some(prof);
        total / n_batches as f32
    }

    fn prepare_eval(&mut self, ctx: &TrainContext<'_>) {
        // Fix one neighbor draw per entity so evaluation is deterministic.
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.base.seed ^ 0x5eed);
        let k = self.config.n_neighbors;
        let fields: Vec<Vec<(u32, u32)>> =
            (0..ctx.ckg.n_entities()).map(|e| sample_neighbors(ctx.ckg, e, k, &mut rng)).collect();
        self.eval_neighbors = Some(Arc::new(fields));
        self.n_items = ctx.inter.n_items;
        // Cache the item→entity mapping implicitly (contiguous layout).
        debug_assert_eq!(ctx.ckg.item_entity(0), ctx.ckg.n_users);
    }

    fn score_items(&self, user: Id) -> Vec<f32> {
        let fields = Arc::clone(self.eval_neighbors.as_ref().expect("prepare_eval not called"));
        let n_users = self.store.value(self.user_emb).rows();
        let mut scores = Vec::with_capacity(self.n_items);
        // Chunk items to bound tape memory.
        const CHUNK: usize = 256;
        let mut start = 0;
        while start < self.n_items {
            let end = (start + CHUNK).min(self.n_items);
            let items: Vec<usize> = (start..end).map(|i| n_users + i).collect();
            let users = vec![user as usize; items.len()];
            let mut t = Tape::new();
            let uemb = t.constant(self.store.value(self.user_emb).clone());
            let eemb = t.constant(self.store.value(self.ent_emb).clone());
            let remb = t.constant(self.store.value(self.rel_emb).clone());
            let lw: Vec<Var> =
                self.layer_w.iter().map(|&p| t.constant(self.store.value(p).clone())).collect();
            let lb: Vec<Var> =
                self.layer_b.iter().map(|&p| t.constant(self.store.value(p).clone())).collect();
            let rep = self.item_reprs(&mut t, uemb, eemb, remb, &lw, &lb, &users, &items, |e| {
                fields[e].clone()
            });
            let u = t.gather_rows(uemb, &users);
            let y = t.rowwise_dot(u, rep);
            scores.extend_from_slice(t.value(y).as_slice());
            start = end;
        }
        scores
    }

    fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn save_state(&self) -> ModelState {
        ModelState::capture(&self.store, &self.adam)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CkptError> {
        state.restore(&mut self.store, &mut self.adam)?;
        self.eval_neighbors = None;
        Ok(())
    }

    fn scale_lr(&mut self, factor: f32) {
        self.adam.lr *= factor;
    }

    fn params_finite(&mut self) -> bool {
        self.store.touched_finite()
    }

    fn take_epoch_profile(&mut self) -> Option<EpochProfile> {
        self.last_profile.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::TrainContext;
    use crate::test_fixtures::{auc, toy_world};

    fn fast_config() -> KgcnConfig {
        KgcnConfig { base: ModelConfig::fast(), n_neighbors: 3, n_layers: 2 }
    }

    #[test]
    fn kgcn_learns_toy_world() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Kgcn::new(&ctx, &fast_config());
        let mut rng = seeded_rng(1);
        let first = model.train_epoch(&ctx, &mut rng);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_epoch(&ctx, &mut rng);
        }
        assert!(last < first, "KGCN loss should fall: {first} -> {last}");
        model.prepare_eval(&ctx);
        let a = auc(&model, &inter);
        assert!(a > 0.65, "KGCN AUC {a}");
    }

    #[test]
    fn sample_neighbors_handles_isolated_entities() {
        let (_, ckg) = toy_world();
        let mut rng = seeded_rng(2);
        // Every neighbor of a connected entity comes from its CSR slice.
        for e in 0..ckg.n_entities() {
            let ns = sample_neighbors(&ckg, e, 4, &mut rng);
            assert_eq!(ns.len(), 4);
            if ckg.degree(e) > 0 {
                for (r, tail) in ns {
                    assert!(ckg.neighbors(e).any(|(rr, tt)| rr == r && tt == tail));
                }
            } else {
                assert!(ns.iter().all(|&(r, t)| r == 0 && t as usize == e));
            }
        }
    }

    #[test]
    fn degenerate_epoch_still_invalidates_eval_neighbors() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Kgcn::new(&ctx, &fast_config());
        model.prepare_eval(&ctx);
        assert!(model.eval_neighbors.is_some());

        let empty = facility_kg::Interactions::from_lists(
            inter.n_items,
            vec![vec![]; inter.n_users],
            vec![vec![]; inter.n_users],
        );
        let empty_ctx = TrainContext { inter: &empty, ckg: &ckg };
        let mut rng = seeded_rng(3);
        assert_eq!(model.train_epoch(&empty_ctx, &mut rng), 0.0);
        assert!(
            model.eval_neighbors.is_none(),
            "eval receptive field must be dropped on every exit path"
        );
    }

    #[test]
    fn epoch_profile_counts_sampled_receptive_field() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Kgcn::new(&ctx, &fast_config());
        let mut rng = seeded_rng(4);
        model.train_epoch(&ctx, &mut rng);
        let prof = model.take_epoch_profile().expect("profile recorded");
        assert!(prof.batches >= 1);
        assert!(prof.gathered_rows > 0 && prof.gathered_edges > 0);
    }

    #[test]
    fn eval_is_deterministic_after_prepare() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Kgcn::new(&ctx, &fast_config());
        model.prepare_eval(&ctx);
        assert_eq!(model.score_items(1), model.score_items(1));
    }
}
