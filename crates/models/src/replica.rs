//! Deterministic data-parallel worker pool for macro-step training and
//! chunked evaluation.
//!
//! A *macro-step* draws [`MACRO_WIDTH`] independent micro-batches and
//! trains each against a shared frozen parameter snapshot; the per-batch
//! sparse gradients are then folded **in batch order**
//! ([`facility_autograd::fold_grads_ordered`]) and applied once. Three
//! choices make the whole schedule a pure function of the seed,
//! independent of how many worker threads execute it:
//!
//! 1. **Fixed macro width.** The macro-step always spans `MACRO_WIDTH`
//!    micro-batches no matter how many workers exist, so the gradient
//!    schedule (partitioning, fold order, optimizer step count) is
//!    identical for every `--replicas` value; the replica count only
//!    chooses how many threads chew through the fixed schedule.
//! 2. **Per-batch RNG streams.** Each micro-batch seeds its own RNG from
//!    [`replica_stream`]`(stream_base, batch_index)`, so sampling and
//!    dropout never race on a shared stream and batch `i` draws the same
//!    samples whichever worker runs it.
//! 3. **Slot-ordered results.** [`pooled_map`] assigns job `j` to worker
//!    `j % threads` and writes its result into slot `j`, so downstream
//!    folds see results in job order, never completion order.
//!
//! Workers only run tapes: the macro-step's *prepare* phase — sampling,
//! the shared union subgraph extraction
//! (`facility_kg::subgraph::SubgraphScratch::extract_many`), and the
//! hub-representation cache refresh — happens once on the main thread
//! before the pool is invoked, so per-batch work contains no redundant
//! traversal and aggregate extraction cost is independent of the
//! replica count (DESIGN.md §4f).

use rand::rngs::StdRng;

/// Number of micro-batches per macro-step. Fixed (rather than equal to
/// the replica count) so the gradient schedule — and therefore the loss
/// trajectory — is bitwise-identical for every `--replicas` value.
pub const MACRO_WIDTH: usize = 8;

/// Default replica count: available cores, capped at [`MACRO_WIDTH`]
/// (more workers than micro-batches per macro-step would idle).
pub fn default_replicas() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MACRO_WIDTH)
}

/// SplitMix64 finalizer — the same mixer the trainer uses for per-epoch
/// seeds, duplicated here because `facility-eval` depends on this crate.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed for micro-batch `idx`'s private RNG stream from the
/// epoch's `stream_base` (itself one `next_u64` draw from the epoch RNG,
/// so retries/resumes re-derive it for free).
pub fn replica_stream(stream_base: u64, idx: u64) -> u64 {
    splitmix(stream_base ^ splitmix(idx))
}

/// A fresh [`StdRng`] for micro-batch `idx` of the current epoch.
pub fn batch_rng(stream_base: u64, idx: u64) -> StdRng {
    facility_linalg::seeded_rng(replica_stream(stream_base, idx))
}

/// Map `jobs` across `states.len()` workers with a deterministic static
/// assignment (job `j` runs on worker `j % threads`, with exclusive use
/// of `states[j % threads]`), returning results **in job order**.
///
/// With a single state the jobs run inline on the calling thread — no
/// spawns — which is what makes an R=1 replica run bitwise-identical to
/// the same schedule executed serially.
///
/// # Panics
/// Panics if `states` is empty or a worker panics.
pub fn pooled_map<S, I, T, F>(states: &mut [S], jobs: Vec<I>, f: F) -> Vec<T>
where
    S: Send,
    I: Send,
    T: Send,
    F: Fn(&mut S, usize, I) -> T + Sync,
{
    let threads = states.len();
    assert!(threads > 0, "pooled_map needs at least one worker state");
    if threads == 1 || jobs.len() <= 1 {
        // audit: unwrap — threads > 0 asserted above, so states[0] exists
        let s = &mut states[0];
        return jobs.into_iter().enumerate().map(|(j, job)| f(s, j, job)).collect();
    }
    let n_jobs = jobs.len();
    let mut per_worker: Vec<Vec<(usize, I)>> = (0..threads).map(|_| Vec::new()).collect();
    for (j, job) in jobs.into_iter().enumerate() {
        per_worker[j % threads].push((j, job)); // audit: unwrap — j % threads < threads = len
    }
    let mut slots: Vec<Option<T>> = (0..n_jobs).map(|_| None).collect();
    std::thread::scope(|sc| {
        let handles: Vec<_> = states
            .iter_mut()
            .zip(per_worker)
            .map(|(state, work)| {
                let f = &f;
                sc.spawn(move || {
                    work.into_iter().map(|(j, job)| (j, f(state, j, job))).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // audit: unwrap — join fails only on worker panic; re-raising
            // it on the main thread is the intended failure mode
            for (j, out) in h.join().expect("replica worker panicked") {
                slots[j] = Some(out); // audit: unwrap — j < n_jobs = slots.len()
            }
        }
    });
    // audit: unwrap — every j in 0..n_jobs was assigned to exactly one worker
    slots.into_iter().map(|s| s.expect("every job produced a result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn pooled_map_preserves_job_order_for_any_thread_count() {
        let square = |_s: &mut (), j: usize, x: usize| (j, x * x);
        let jobs: Vec<usize> = (10..30).collect();
        let serial = pooled_map(&mut [()], jobs.clone(), square);
        for threads in 2..=5 {
            let mut states = vec![(); threads];
            let par = pooled_map(&mut states, jobs.clone(), square);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn pooled_map_gives_each_worker_exclusive_state() {
        // Each worker counts its jobs; the static assignment puts job j on
        // worker j % threads exactly.
        let mut states = vec![0usize; 3];
        let out = pooled_map(&mut states, (0..10).collect::<Vec<usize>>(), |count, j, x| {
            *count += 1;
            j + x
        });
        assert_eq!(out, (0..10).map(|j| 2 * j).collect::<Vec<_>>());
        assert_eq!(states, vec![4, 3, 3]);
    }

    #[test]
    fn replica_streams_are_distinct_and_stable() {
        let base = 0xDEAD_BEEF;
        let a = replica_stream(base, 0);
        let b = replica_stream(base, 1);
        assert_ne!(a, b);
        assert_eq!(a, replica_stream(base, 0), "pure function of (base, idx)");
        // The derived RNGs draw different streams.
        let mut ra = batch_rng(base, 0);
        let mut rb = batch_rng(base, 1);
        assert_ne!(ra.next_u64(), rb.next_u64());
    }

    #[test]
    fn default_replicas_is_positive_and_capped() {
        let r = default_replicas();
        assert!((1..=MACRO_WIDTH).contains(&r));
    }
}
