//! Shared training context, configuration, and helpers used by every
//! model.

use facility_kg::{Ckg, Id, Interactions};
use facility_linalg::Matrix;

/// Borrowed view of everything a model trains on: the interaction split
/// and the collaborative knowledge graph (built from the *training*
/// interactions).
#[derive(Clone, Copy)]
pub struct TrainContext<'a> {
    /// Train/test interaction split.
    pub inter: &'a Interactions,
    /// The CKG (UIG from training interactions + enabled knowledge).
    pub ckg: &'a Ckg,
}

impl<'a> TrainContext<'a> {
    /// Number of BPR batches per epoch so each training pair is seen about
    /// once in expectation.
    pub fn batches_per_epoch(&self, batch_size: usize) -> usize {
        self.inter.n_train().div_ceil(batch_size).max(1)
    }

    /// Attribute entities directly connected to each item in the CKG
    /// (the feature set FM/NFM consume). Entry `i` lists entity ids.
    pub fn item_attribute_entities(&self) -> Vec<Vec<usize>> {
        let ckg = self.ckg;
        let attr_lo = ckg.n_users + ckg.n_items;
        (0..ckg.n_items)
            .map(|i| {
                ckg.neighbors(ckg.item_entity(i as Id))
                    .filter(|&(_, t)| (t as usize) >= attr_lo)
                    .map(|(_, t)| t as usize)
                    .collect()
            })
            .collect()
    }
}

/// Hyperparameters shared by all models (paper Section VI-D).
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Embedding size (paper: 64 for all models, 16 for RippleNet).
    pub embed_dim: usize,
    /// Mini-batch size (paper: 512).
    pub batch_size: usize,
    /// Adam learning rate (paper grid: 0.05 … 0.001).
    pub lr: f32,
    /// L2 regularization coefficient λ (paper grid: 1e-5 … 1e2).
    pub l2: f32,
    /// Dropout keep-probability (1.0 = no dropout; paper tunes the *drop*
    /// ratio over 0.0 … 0.8 for NFM and CKAT).
    pub keep_prob: f32,
    /// RNG seed for parameter initialization.
    pub seed: u64,
    /// Data-parallel replica workers for macro-step training (see
    /// `crate::replica`). `0` keeps the legacy per-batch path; `R ≥ 1`
    /// trains `MACRO_WIDTH` micro-batches per optimizer step on `R`
    /// threads — the schedule (and so the whole run) is identical for
    /// every `R ≥ 1`, only the wall-clock changes.
    pub replicas: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            embed_dim: 64,
            batch_size: 512,
            lr: 0.01,
            l2: 1e-5,
            keep_prob: 0.9,
            seed: 0,
            replicas: 0,
        }
    }
}

impl ModelConfig {
    /// A smaller/faster profile for tests and smoke benchmarks.
    pub fn fast() -> Self {
        Self { embed_dim: 16, batch_size: 256, lr: 0.05, ..Self::default() }
    }
}

/// Scores every item against every user given cached representation
/// matrices, by inner product — the shape used by most models'
/// `score_items`.
pub fn dot_scores(user_reprs: &Matrix, item_reprs: &Matrix, user: Id) -> Vec<f32> {
    let u = user_reprs.row(user as usize);
    item_reprs.iter_rows().map(|v| facility_linalg::matrix::dot(u, v)).collect()
}

/// Sorted-unique union of several index lists, plus each list remapped to
/// positions in the union.
///
/// The union is strictly increasing, so it can feed
/// `Tape::gather_leaf` and the resulting sparse gradient takes the fast
/// (already-sorted) accumulation path. The remapped lists let a loss built
/// on global ids run unchanged over the gathered union rows.
pub fn union_locals(lists: &[&[usize]]) -> (Vec<usize>, Vec<Vec<usize>>) {
    let mut union: Vec<usize> = lists.iter().flat_map(|l| l.iter().copied()).collect();
    union.sort_unstable();
    union.dedup();
    let locals = lists
        .iter()
        .map(|l| {
            // audit: unwrap — every searched id was flattened into the union above.
            l.iter().map(|g| union.binary_search(g).expect("every id is in the union")).collect()
        })
        .collect();
    (union, locals)
}

/// Order-preserving dedup of an extraction seed list.
///
/// Returns `(unique, pos_map)` where `unique` keeps the first occurrence
/// of every id in input order and `pos_map[i]` is the index in `unique`
/// of the original position `i`. Because BFS extraction discovers seeds
/// in first-occurrence order, extracting from `unique` yields the exact
/// subgraph that the duplicated list would have, while callers recover
/// their per-position seed locals as `seed_locals[pos_map[i]]`.
pub fn dedup_seeds(seeds: &[usize]) -> (Vec<usize>, Vec<usize>) {
    // audit: ordered — membership-only map, iteration order never observed.
    let mut first_at: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut unique = Vec::new();
    let mut pos_map = Vec::with_capacity(seeds.len());
    for &s in seeds {
        let at = *first_at.entry(s).or_insert_with(|| {
            unique.push(s);
            unique.len() - 1
        });
        pos_map.push(at);
    }
    (unique, pos_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::toy_world;

    #[test]
    fn dedup_seeds_keeps_first_occurrence_order_and_maps_positions() {
        let seeds = [5usize, 3, 5, 7, 3, 5];
        let (unique, pos_map) = dedup_seeds(&seeds);
        assert_eq!(unique, vec![5, 3, 7], "first-occurrence order");
        assert_eq!(pos_map, vec![0, 1, 0, 2, 1, 0]);
        for (i, &p) in pos_map.iter().enumerate() {
            assert_eq!(unique[p], seeds[i], "position {i} round-trips");
        }

        let (empty, map) = dedup_seeds(&[]);
        assert!(empty.is_empty() && map.is_empty());
    }

    #[test]
    fn batches_per_epoch_rounds_up() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        assert_eq!(ctx.batches_per_epoch(4), 3); // 9 train pairs / 4
        assert_eq!(ctx.batches_per_epoch(100), 1);
    }

    #[test]
    fn item_attribute_entities_are_attributes_only() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let attrs = ctx.item_attribute_entities();
        assert_eq!(attrs.len(), 6);
        let attr_lo = ckg.n_users + ckg.n_items;
        for list in &attrs {
            assert_eq!(list.len(), 2, "each item has site + type");
            for &e in list {
                assert!(e >= attr_lo);
            }
        }
    }

    #[test]
    fn union_locals_builds_sorted_union_and_roundtrips() {
        let a = [7usize, 2, 7];
        let b = [5usize, 2];
        let (union, locals) = union_locals(&[&a, &b]);
        assert_eq!(union, vec![2, 5, 7]);
        assert!(union.windows(2).all(|w| w[0] < w[1]));
        for (list, loc) in [(&a[..], &locals[0]), (&b[..], &locals[1])] {
            for (g, &l) in list.iter().zip(loc) {
                assert_eq!(union[l], *g);
            }
        }
    }

    #[test]
    fn dot_scores_matches_manual() {
        let users = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let items = Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        assert_eq!(dot_scores(&users, &items, 0), vec![1., 2., 3.]);
        assert_eq!(dot_scores(&users, &items, 1), vec![3., 4., 7.]);
    }
}
