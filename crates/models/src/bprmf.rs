//! BPRMF — Bayesian personalized ranking matrix factorization (Rendle et
//! al. 2012), the pure collaborative-filtering baseline of Table II.
//! audit: module unwrap — embedding rows are indexed by ids bounded at CKG
//! construction; the model parity/unit tests cover every lookup path.
//!
//! Score: `ŷ(u, v) = e_uᵀ e_v` over free user/item embeddings; trained
//! with the BPR pairwise loss and L2 regularization on the embeddings
//! touched by each batch. The embedding matrices enter each tape as
//! gather leaves over the batch's unique user/item ids, so gradients are
//! row-sparse and lazy Adam updates only those rows
//! ([`facility_autograd::SparseRowGrad`]).

use crate::common::{dot_scores, union_locals, ModelConfig, TrainContext};
use crate::replica::{batch_rng, pooled_map, MACRO_WIDTH};
use crate::Recommender;
use facility_autograd::{fold_grads_ordered, Adam, Grad, ParamId, ParamStore, Tape};
use facility_ckpt::{CkptError, ModelState};
use facility_kg::sampling::sample_bpr_batch;
use facility_kg::Id;
use facility_linalg::{init, seeded_rng, Matrix};
use rand::rngs::StdRng;
use rand::RngCore;

/// One worker's output for a micro-batch: the per-parameter gradients in
/// application order, and the batch loss.
type BatchOut = (Vec<(ParamId, Grad)>, f32);
use std::sync::Arc;

/// The BPRMF model.
pub struct Bprmf {
    store: ParamStore,
    adam: Adam,
    user_emb: ParamId,
    item_emb: ParamId,
    config: ModelConfig,
    cached_users: Option<Matrix>,
    cached_items: Option<Matrix>,
}

impl Bprmf {
    /// Initialize with Xavier embeddings.
    pub fn new(ctx: &TrainContext<'_>, config: &ModelConfig) -> Self {
        let mut rng = seeded_rng(config.seed);
        let d = config.embed_dim;
        let mut store = ParamStore::new();
        let user_emb = store.add("user_emb", init::xavier_uniform(ctx.inter.n_users, d, &mut rng));
        let item_emb = store.add("item_emb", init::xavier_uniform(ctx.inter.n_items, d, &mut rng));
        let adam = Adam::default_for(&store, config.lr);
        Self {
            store,
            adam,
            user_emb,
            item_emb,
            config: config.clone(),
            cached_users: None,
            cached_items: None,
        }
    }

    /// Replica macro-step arm (see `crate::replica`): `MACRO_WIDTH`
    /// micro-batches per optimizer step, each sampled from its own RNG
    /// stream and trained against the frozen snapshot on a pool worker,
    /// gradients folded in batch order and applied once. Identical for
    /// every replica count ≥ 1.
    fn train_epoch_replicated(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32 {
        let threads = self.config.replicas.max(1);
        let n_batches = ctx.batches_per_epoch(self.config.batch_size);
        let stream_base = rng.next_u64();
        let batch_size = self.config.batch_size;
        let l2 = self.config.l2;
        let (user_emb, item_emb) = (self.user_emb, self.item_emb);
        let mut total = 0.0;
        for start in (0..n_batches).step_by(MACRO_WIDTH) {
            let end = (start + MACRO_WIDTH).min(n_batches);
            // Sampling is cheap relative to the tapes; drawing each
            // batch's stream on the main thread keeps the prepare phase
            // simple without affecting the schedule.
            let prepared: Vec<Option<BprPrep>> = (start..end)
                .map(|idx| {
                    let mut brng = batch_rng(stream_base, idx as u64);
                    let batch = sample_bpr_batch(ctx.inter, batch_size, &mut brng);
                    if batch.is_empty() {
                        return None;
                    }
                    let users: Vec<usize> = batch.iter().map(|s| s.user as usize).collect();
                    let pos: Vec<usize> = batch.iter().map(|s| s.pos as usize).collect();
                    let neg: Vec<usize> = batch.iter().map(|s| s.neg as usize).collect();
                    let (uniq_users, user_locals) = union_locals(&[&users]);
                    let (uniq_items, item_locals) = union_locals(&[&pos, &neg]);
                    Some(BprPrep {
                        n: batch.len(),
                        uniq_users,
                        user_locals,
                        uniq_items,
                        item_locals,
                    })
                })
                .collect();
            if prepared.iter().all(Option::is_none) {
                continue;
            }
            // Lazy Adam must settle every row the macro-step reads before
            // the workers snapshot the frozen values.
            let mut need_u: Vec<usize> =
                prepared.iter().flatten().flat_map(|p| p.uniq_users.iter().copied()).collect();
            let mut need_i: Vec<usize> =
                prepared.iter().flatten().flat_map(|p| p.uniq_items.iter().copied()).collect();
            need_u.sort_unstable();
            need_u.dedup();
            need_i.sort_unstable();
            need_i.dedup();
            self.store.sync_rows(&mut self.adam, user_emb, &need_u);
            self.store.sync_rows(&mut self.adam, item_emb, &need_i);

            let frozen: &ParamStore = &self.store;
            let mut units = vec![(); threads];
            let outs: Vec<Option<BatchOut>> =
                pooled_map(&mut units, prepared, |_unit, _slot, p: Option<BprPrep>| {
                    let p = p?;
                    let mut t = Tape::new();
                    let uemb = t.gather_leaf(frozen.value(user_emb), Arc::new(p.uniq_users));
                    let vemb = t.gather_leaf(frozen.value(item_emb), Arc::new(p.uniq_items));
                    let u = t.gather_rows(uemb, &p.user_locals[0]);
                    let i = t.gather_rows(vemb, &p.item_locals[0]);
                    let j = t.gather_rows(vemb, &p.item_locals[1]);
                    let y_pos = t.rowwise_dot(u, i);
                    let y_neg = t.rowwise_dot(u, j);
                    let diff = t.sub(y_pos, y_neg);
                    let ls = t.log_sigmoid(diff);
                    let s = t.sum_all(ls);
                    let bpr = t.scale(s, -1.0 / p.n as f32);
                    let ru = t.frobenius_sq(u);
                    let ri = t.frobenius_sq(i);
                    let rj = t.frobenius_sq(j);
                    let reg0 = t.add(ru, ri);
                    let reg1 = t.add(reg0, rj);
                    let reg = t.scale(reg1, l2 / p.n as f32);
                    let loss = t.add(bpr, reg);
                    let loss_val = t.value(loss)[(0, 0)];
                    t.backward(loss);
                    let grads: Vec<(ParamId, Grad)> = [(user_emb, uemb), (item_emb, vemb)]
                        .into_iter()
                        .filter_map(|(q, v)| t.take_sparse_grad(v).map(|g| (q, Grad::Sparse(g))))
                        .collect();
                    Some((grads, loss_val))
                });
            let mut parts: Vec<Vec<(ParamId, Grad)>> = Vec::new();
            for (grads, loss) in outs.into_iter().flatten() {
                total += loss;
                parts.push(grads);
            }
            let folded = fold_grads_ordered(&parts, 1.0 / parts.len() as f32);
            self.store.apply(&mut self.adam, &folded);
        }
        self.store.sync_all(&mut self.adam, self.user_emb);
        self.store.sync_all(&mut self.adam, self.item_emb);
        self.cached_users = None;
        self.cached_items = None;
        total / n_batches as f32
    }
}

/// One prepared micro-batch: samples drawn and remapped to union-local
/// ids, ready for a worker to tape against the frozen snapshot.
struct BprPrep {
    n: usize,
    uniq_users: Vec<usize>,
    user_locals: Vec<Vec<usize>>,
    uniq_items: Vec<usize>,
    item_locals: Vec<Vec<usize>>,
}

impl Recommender for Bprmf {
    fn name(&self) -> String {
        "BPRMF".into()
    }

    fn train_epoch(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32 {
        if self.config.replicas >= 1 {
            return self.train_epoch_replicated(ctx, rng);
        }
        let n_batches = ctx.batches_per_epoch(self.config.batch_size);
        let mut total = 0.0;
        for _ in 0..n_batches {
            let batch = sample_bpr_batch(ctx.inter, self.config.batch_size, rng);
            if batch.is_empty() {
                return 0.0;
            }
            let users: Vec<usize> = batch.iter().map(|s| s.user as usize).collect();
            let pos: Vec<usize> = batch.iter().map(|s| s.pos as usize).collect();
            let neg: Vec<usize> = batch.iter().map(|s| s.neg as usize).collect();
            // One gather leaf per embedding matrix over the batch's unique
            // row ids; the loss indexes the gathered rows by local id.
            let (uniq_users, user_locals) = union_locals(&[&users]);
            let (uniq_items, item_locals) = union_locals(&[&pos, &neg]);
            self.store.sync_rows(&mut self.adam, self.user_emb, &uniq_users);
            self.store.sync_rows(&mut self.adam, self.item_emb, &uniq_items);

            let mut t = Tape::new();
            let uemb = t.gather_leaf(self.store.value(self.user_emb), Arc::new(uniq_users));
            let vemb = t.gather_leaf(self.store.value(self.item_emb), Arc::new(uniq_items));
            let u = t.gather_rows(uemb, &user_locals[0]);
            let i = t.gather_rows(vemb, &item_locals[0]);
            let j = t.gather_rows(vemb, &item_locals[1]);
            let y_pos = t.rowwise_dot(u, i);
            let y_neg = t.rowwise_dot(u, j);
            let diff = t.sub(y_pos, y_neg);
            let ls = t.log_sigmoid(diff);
            let s = t.sum_all(ls);
            let bpr = t.scale(s, -1.0 / batch.len() as f32);
            // L2 on the batch embeddings (standard BPR regularization).
            let ru = t.frobenius_sq(u);
            let ri = t.frobenius_sq(i);
            let rj = t.frobenius_sq(j);
            let reg0 = t.add(ru, ri);
            let reg1 = t.add(reg0, rj);
            let reg = t.scale(reg1, self.config.l2 / batch.len() as f32);
            let loss = t.add(bpr, reg);
            total += t.value(loss)[(0, 0)];
            t.backward(loss);
            let grads: Vec<(ParamId, Grad)> = [(self.user_emb, uemb), (self.item_emb, vemb)]
                .into_iter()
                .filter_map(|(p, v)| t.take_sparse_grad(v).map(|g| (p, Grad::Sparse(g))))
                .collect();
            self.store.apply(&mut self.adam, &grads);
        }
        // Catch every deferred row up before eval/checkpointing reads the
        // matrices directly.
        self.store.sync_all(&mut self.adam, self.user_emb);
        self.store.sync_all(&mut self.adam, self.item_emb);
        self.cached_users = None;
        self.cached_items = None;
        total / n_batches as f32
    }

    fn prepare_eval(&mut self, _ctx: &TrainContext<'_>) {
        self.cached_users = Some(self.store.value(self.user_emb).clone());
        self.cached_items = Some(self.store.value(self.item_emb).clone());
    }

    fn score_items(&self, user: Id) -> Vec<f32> {
        let (u, v) = (
            self.cached_users.as_ref().expect("prepare_eval not called"),
            self.cached_items.as_ref().expect("prepare_eval not called"),
        );
        dot_scores(u, v, user)
    }

    fn eval_matrices(&self) -> Option<(&Matrix, &Matrix)> {
        self.cached_users.as_ref().zip(self.cached_items.as_ref())
    }

    fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn save_state(&self) -> ModelState {
        ModelState::capture(&self.store, &self.adam)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CkptError> {
        state.restore(&mut self.store, &mut self.adam)?;
        self.cached_users = None;
        self.cached_items = None;
        Ok(())
    }

    fn scale_lr(&mut self, factor: f32) {
        self.adam.lr *= factor;
    }

    fn replicas(&self) -> usize {
        self.config.replicas
    }

    fn params_finite(&mut self) -> bool {
        self.store.touched_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{auc, toy_world};

    #[test]
    fn loss_decreases_and_ranking_beats_chance() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Bprmf::new(&ctx, &ModelConfig::fast());
        let mut rng = seeded_rng(1);
        let first = model.train_epoch(&ctx, &mut rng);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_epoch(&ctx, &mut rng);
        }
        assert!(last < first, "BPR loss should fall: {first} -> {last}");
        model.prepare_eval(&ctx);
        let a = auc(&model, &inter);
        assert!(a > 0.75, "train AUC {a} should beat chance decisively");
    }

    #[test]
    fn score_items_has_item_length() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = Bprmf::new(&ctx, &ModelConfig::fast());
        model.prepare_eval(&ctx);
        assert_eq!(model.score_items(0).len(), inter.n_items);
    }

    #[test]
    fn deterministic_under_seed() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut a = Bprmf::new(&ctx, &ModelConfig::fast());
        let mut b = Bprmf::new(&ctx, &ModelConfig::fast());
        let la = a.train_epoch(&ctx, &mut seeded_rng(2));
        let lb = b.train_epoch(&ctx, &mut seeded_rng(2));
        assert_eq!(la, lb);
    }
}
