#![warn(missing_docs)]

//! # facility-models
//!
//! The CKAT recommendation model and the seven baselines the paper
//! compares against (Section VI-C), all trained with the same protocol:
//! BPR pairwise ranking loss (Eq. 12), Adam, one sampled negative per
//! positive, and — for the knowledge-aware models — an auxiliary
//! translation loss on the CKG (Eq. 2).
//!
//! | Model | Family | Module |
//! |-------|--------|--------|
//! | BPRMF | collaborative filtering | [`bprmf`] |
//! | FM | supervised / factorization | [`fm`] |
//! | NFM | supervised / neural factorization | [`nfm`] |
//! | CKE | regularization-based (TransR) | [`cke`] |
//! | CFKG | regularization-based (TransE) | [`cfkg`] |
//! | RippleNet | propagation-based | [`ripplenet`] |
//! | KGCN | propagation-based | [`kgcn`] |
//! | **CKAT** | propagation + knowledge-aware attention | [`ckat`] |
//!
//! Every model implements [`Recommender`]: `train_epoch` consumes a
//! [`TrainContext`] (interactions + CKG), `prepare_eval` caches whatever
//! representations full-ranking evaluation needs, and `score_items`
//! produces the scores of *all* items for one user (read-only, `Sync`, so
//! the evaluator can fan users out with rayon).

#[cfg(test)]
pub(crate) mod test_fixtures;

pub mod bprmf;
pub mod cfkg;
pub mod ckat;
pub mod cke;
pub mod common;
pub mod fm;
pub mod heuristics;
pub mod kgcn;
pub mod nfm;
pub mod profile;
pub mod replica;
pub mod ripplenet;
pub mod transr;

pub use common::{ModelConfig, TrainContext};
pub use profile::EpochProfile;

use facility_ckpt::{CkptError, ModelState};
use facility_kg::Id;
use rand::rngs::StdRng;

/// A trainable top-K recommender over a facility CKG.
pub trait Recommender: Send + Sync {
    /// Model name as it appears in the paper's tables.
    fn name(&self) -> String;

    /// Run one training epoch; returns the mean per-sample loss.
    fn train_epoch(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32;

    /// Cache representations for evaluation. Must be called after training
    /// (or whenever parameters changed) and before [`Recommender::score_items`].
    fn prepare_eval(&mut self, ctx: &TrainContext<'_>);

    /// Scores of all items for `user` (higher = more recommended).
    /// Length is `ctx.inter.n_items`.
    fn score_items(&self, user: Id) -> Vec<f32>;

    /// The cached `(user, item)` representation matrices built by
    /// [`Recommender::prepare_eval`], for models whose scoring is a plain
    /// user·item inner product over those caches. The serving layer
    /// freezes them into an immutable snapshot. `None` when the caches
    /// have not been built yet or the model scores some other way
    /// (sum-pooled features, per-hop attention, …) — such models cannot
    /// be snapshotted for online serving.
    fn eval_matrices(&self) -> Option<(&facility_linalg::Matrix, &facility_linalg::Matrix)> {
        None
    }

    /// Number of scalar parameters (for reporting).
    fn num_parameters(&self) -> usize;

    /// Per-phase timings and work counters for the most recent
    /// [`Recommender::train_epoch`] call, when the model records them.
    ///
    /// Consuming: returns `Some` at most once per trained epoch so stale
    /// profiles are never attributed to a later epoch. The default
    /// implementation returns `None` (model not instrumented).
    fn take_epoch_profile(&mut self) -> Option<EpochProfile> {
        None
    }

    /// Snapshot all trainable state (parameters + optimizer moments) for
    /// checkpointing. Parameter-free models (heuristics) return the empty
    /// default and are trivially resumable.
    fn save_state(&self) -> ModelState {
        ModelState::default()
    }

    /// Restore a snapshot taken by [`Recommender::save_state`] on a model
    /// built with the same configuration and world. Implementations must
    /// also invalidate any eval caches derived from the parameters, so a
    /// later `prepare_eval` rebuilds them from the restored values.
    ///
    /// Fails with [`CkptError::Mismatch`] if the snapshot does not fit
    /// (different model, parameter shapes, …). The default accepts only the
    /// empty snapshot, matching the default `save_state`.
    fn load_state(&mut self, state: &ModelState) -> Result<(), CkptError> {
        if state.params.is_empty() {
            Ok(())
        } else {
            Err(CkptError::Mismatch(format!(
                "{} has no trainable state but snapshot carries {} parameters",
                self.name(),
                state.params.len()
            )))
        }
    }

    /// Scale the optimizer learning rate by `factor` (divergence recovery
    /// backs off with factors < 1). No-op for parameter-free models.
    fn scale_lr(&mut self, _factor: f32) {}

    /// Data-parallel replica count this model trains with (see
    /// [`replica`]): `0` = legacy per-batch path, `R ≥ 1` = macro-step
    /// replica mode on `R` threads. The trainer stamps this into
    /// checkpoints so a resume cannot silently switch gradient schedules.
    /// Models without a replica path always report 0.
    fn replicas(&self) -> usize {
        0
    }

    /// True when every trainable scalar *touched since the last check* is
    /// finite. The trainer's divergence guard calls this after each
    /// epoch, so store-backed models answer from
    /// [`facility_autograd::ParamStore::touched_finite`] — an incremental
    /// scan over rows the optimizer actually updated — rather than a full
    /// sweep of every parameter. Anything needing an absolute guarantee
    /// (e.g. a checkpoint about to be persisted) must full-scan the
    /// snapshot instead. Parameter-free models are always healthy.
    fn params_finite(&mut self) -> bool {
        true
    }
}

/// Identifier for constructing any of the eight models uniformly (used by
/// the benchmark harness for Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Bayesian personalized ranking matrix factorization.
    Bprmf,
    /// Factorization machine.
    Fm,
    /// Neural factorization machine.
    Nfm,
    /// Collaborative knowledge-base embedding.
    Cke,
    /// Collaborative filtering with knowledge graph (TransE).
    Cfkg,
    /// RippleNet preference propagation.
    RippleNet,
    /// Knowledge graph convolutional network.
    Kgcn,
    /// Collaborative knowledge-aware graph attention network (ours).
    Ckat,
}

impl ModelKind {
    /// All models in the paper's Table II row order.
    pub fn table2_order() -> [ModelKind; 8] {
        [
            ModelKind::Bprmf,
            ModelKind::Fm,
            ModelKind::Nfm,
            ModelKind::Cke,
            ModelKind::Cfkg,
            ModelKind::RippleNet,
            ModelKind::Kgcn,
            ModelKind::Ckat,
        ]
    }

    /// Display name matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Bprmf => "BPRMF",
            ModelKind::Fm => "FM",
            ModelKind::Nfm => "NFM",
            ModelKind::Cke => "CKE",
            ModelKind::Cfkg => "CFKG",
            ModelKind::RippleNet => "RippleNet",
            ModelKind::Kgcn => "KGCN",
            ModelKind::Ckat => "CKAT",
        }
    }

    /// Construct the model with the given shared configuration.
    pub fn build(&self, ctx: &TrainContext<'_>, config: &ModelConfig) -> Box<dyn Recommender> {
        match self {
            ModelKind::Bprmf => Box::new(bprmf::Bprmf::new(ctx, config)),
            ModelKind::Fm => Box::new(fm::Fm::new(ctx, config)),
            ModelKind::Nfm => Box::new(nfm::Nfm::new(ctx, config)),
            ModelKind::Cke => Box::new(cke::Cke::new(ctx, config)),
            ModelKind::Cfkg => Box::new(cfkg::Cfkg::new(ctx, config)),
            ModelKind::RippleNet => {
                Box::new(ripplenet::RippleNet::new(ctx, &ripplenet::RippleConfig::from(config)))
            }
            ModelKind::Kgcn => Box::new(kgcn::Kgcn::new(ctx, &kgcn::KgcnConfig::from(config))),
            ModelKind::Ckat => Box::new(ckat::Ckat::new(ctx, &ckat::CkatConfig::from(config))),
        }
    }
}

#[cfg(test)]
mod cross_model_tests {
    use super::*;
    use crate::test_fixtures::{structured_world, test_auc};
    use facility_linalg::seeded_rng;

    /// On a dataset where item attributes fully explain preferences, the
    /// knowledge-propagation model must generalize better to held-out
    /// items than pure matrix factorization — the mechanism behind the
    /// paper's Table II ordering.
    #[test]
    fn ckat_generalizes_better_than_bprmf_on_structured_data() {
        let (inter, ckg) = structured_world(24, 30, 3, 7);
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let cfg = ModelConfig { keep_prob: 1.0, ..ModelConfig::fast() };

        let mut bpr = ModelKind::Bprmf.build(&ctx, &cfg);
        let mut ckat = ModelKind::Ckat.build(&ctx, &cfg);
        let mut rng = seeded_rng(11);
        for _ in 0..30 {
            bpr.train_epoch(&ctx, &mut rng);
            ckat.train_epoch(&ctx, &mut rng);
        }
        bpr.prepare_eval(&ctx);
        ckat.prepare_eval(&ctx);
        let a_bpr = test_auc(bpr.as_ref(), &inter);
        let a_ckat = test_auc(ckat.as_ref(), &inter);
        assert!(
            a_ckat > a_bpr - 0.02,
            "CKAT test AUC {a_ckat} should not trail BPRMF {a_bpr} on knowledge-structured data"
        );
        assert!(a_ckat > 0.6, "CKAT test AUC {a_ckat} should beat chance");
    }

    /// Every model builds through the uniform `ModelKind` constructor and
    /// produces full-length score vectors.
    #[test]
    fn all_models_build_and_score() {
        let (inter, ckg) = structured_world(10, 12, 3, 8);
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let cfg = ModelConfig { keep_prob: 1.0, ..ModelConfig::fast() };
        let mut rng = seeded_rng(12);
        for kind in ModelKind::table2_order() {
            let mut model = kind.build(&ctx, &cfg);
            let loss = model.train_epoch(&ctx, &mut rng);
            assert!(loss.is_finite(), "{}: non-finite loss", kind.label());
            model.prepare_eval(&ctx);
            let scores = model.score_items(0);
            assert_eq!(scores.len(), inter.n_items, "{}", kind.label());
            assert!(scores.iter().all(|s| s.is_finite()), "{}", kind.label());
            assert!(model.num_parameters() > 0);
        }
    }
}
