//! RippleNet — preference propagation over ripple sets (Wang et al. 2018),
//! propagation-based baseline.
//! audit: module unwrap — embedding rows are indexed by ids bounded at CKG
//! construction; the model parity/unit tests cover every lookup path.
//!
//! A user's hop-1 "ripple set" is a sample of KG triples whose heads are
//! the user's interacted items; hop-2 triples grow from hop-1 tails. For a
//! candidate item `v`, each memory `(h, r, t)` gets attention
//! `p = softmax(vᵀ R_r h)` and contributes `p · e_t` to the hop response
//! `o`; the user representation is `Σ_hops o` and the score is `oᵀ v`.
//! Per the paper's setup the embedding size is 16 (RippleNet's relation
//! matrices are `d × d`, so cost grows quadratically) and `n_hop = 2`.

use crate::common::{ModelConfig, TrainContext};
use crate::Recommender;
use facility_autograd::{Adam, ParamId, ParamStore, Tape, Var};
use facility_ckpt::{CkptError, ModelState};
use facility_kg::sampling::sample_bpr_batch;
use facility_kg::{Ckg, Id};
use facility_linalg::{init, matrix::dot, ops, seeded_rng};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// RippleNet hyperparameters.
#[derive(Debug, Clone)]
pub struct RippleConfig {
    /// Shared hyperparameters (note: `embed_dim` defaults to 16 here, as
    /// in the paper's Section VI-D).
    pub base: ModelConfig,
    /// Number of hops (paper: `n_hop = 2`).
    pub n_hops: usize,
    /// Memories sampled per hop.
    pub memories_per_hop: usize,
}

impl From<&ModelConfig> for RippleConfig {
    fn from(base: &ModelConfig) -> Self {
        let mut base = base.clone();
        base.embed_dim = base.embed_dim.min(16);
        Self { base, n_hops: 2, memories_per_hop: 16 }
    }
}

/// One memory triple `(head, rel, tail)` in entity/relation id space.
type Memory = (u32, u32, u32);

/// The RippleNet model.
pub struct RippleNet {
    store: ParamStore,
    adam: Adam,
    ent_emb: ParamId,
    /// Stacked relation matrices `R_r` (`n_rel·d × d`).
    rel_proj: ParamId,
    config: RippleConfig,
    /// Per-user, per-hop ripple sets (fixed at construction, as in the
    /// reference implementation which samples them once per dataset).
    ripple_sets: Vec<Vec<Vec<Memory>>>,
    n_items: usize,
    n_users_entities: usize,
}

/// Build one user's ripple sets from their training items.
fn build_ripple_sets(
    ckg: &Ckg,
    train_items: &[Id],
    n_hops: usize,
    per_hop: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<Memory>> {
    let mut hops = Vec::with_capacity(n_hops);
    let mut seeds: Vec<u32> = train_items.iter().map(|&i| ckg.item_entity(i) as u32).collect();
    for _ in 0..n_hops {
        // Candidate edges: all CKG edges out of the seed entities.
        let mut candidates: Vec<Memory> = Vec::new();
        for &s in &seeds {
            let e = s as usize;
            for k in ckg.offsets[e]..ckg.offsets[e + 1] {
                candidates.push((s, ckg.rels[k], ckg.tails[k]));
            }
        }
        let set: Vec<Memory> = if candidates.is_empty() {
            // Isolated seeds (or no seeds): self-loops keep shapes fixed.
            let fallback = seeds.first().copied().unwrap_or(0);
            vec![(fallback, 0, fallback); per_hop]
        } else {
            (0..per_hop).map(|_| candidates[rng.gen_range(0..candidates.len())]).collect()
        };
        seeds = set.iter().map(|&(_, _, t)| t).collect();
        hops.push(set);
    }
    hops
}

impl RippleNet {
    /// Initialize from the training context; ripple sets are sampled once,
    /// seeded by the model seed.
    pub fn new(ctx: &TrainContext<'_>, config: &RippleConfig) -> Self {
        let mut rng = seeded_rng(config.base.seed);
        let d = config.base.embed_dim;
        let n_ent = ctx.ckg.n_entities();
        let n_rel = ctx.ckg.n_relations_with_inverse();
        let mut store = ParamStore::new();
        let ent_emb = store.add("ent_emb", init::xavier_uniform(n_ent, d, &mut rng));
        let rel_proj = store.add("rel_proj", init::xavier_uniform(n_rel * d, d, &mut rng));
        let adam = Adam::default_for(&store, config.base.lr);
        let ripple_sets: Vec<Vec<Vec<Memory>>> = (0..ctx.inter.n_users)
            .map(|u| {
                build_ripple_sets(
                    ctx.ckg,
                    &ctx.inter.train[u],
                    config.n_hops,
                    config.memories_per_hop,
                    &mut rng,
                )
            })
            .collect();
        Self {
            store,
            adam,
            ent_emb,
            rel_proj,
            config: config.clone(),
            ripple_sets,
            n_items: ctx.inter.n_items,
            n_users_entities: ctx.ckg.n_users,
        }
    }

    /// Tape forward: scores of `(users[i], item_entities[i])` pairs.
    fn batch_scores(
        &self,
        t: &mut Tape,
        ent: Var,
        rel_proj: Var,
        users: &[usize],
        item_entities: &[usize],
    ) -> Var {
        let d = self.config.base.embed_dim;
        let s_per_hop = self.config.memories_per_hop;
        let b = users.len();
        let v = t.gather_rows(ent, item_entities); // (B × d)

        let mut u_rep: Option<Var> = None;
        for hop in 0..self.config.n_hops {
            // Flatten this hop's memories for the batch.
            let mut heads = Vec::with_capacity(b * s_per_hop);
            let mut rels = Vec::with_capacity(b * s_per_hop);
            let mut tails = Vec::with_capacity(b * s_per_hop);
            for &u in users {
                for &(h, r, tl) in &self.ripple_sets[u][hop] {
                    heads.push(h as usize);
                    rels.push(r as usize);
                    tails.push(tl as usize);
                }
            }
            let n_mem = heads.len();

            // Per-relation projection R_r · h, then restore memory order.
            // BTreeMap for a deterministic relation order on the tape.
            let mut by_rel: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for (m, &r) in rels.iter().enumerate() {
                by_rel.entry(r).or_default().push(m);
            }
            let mut order = Vec::with_capacity(n_mem);
            let mut blocks: Option<Var> = None;
            for (&r, idx) in &by_rel {
                let h_rows: Vec<usize> = idx.iter().map(|&m| heads[m]).collect();
                let h_emb = t.gather_rows(ent, &h_rows);
                let wr_rows: Vec<usize> = (r * d..(r + 1) * d).collect();
                let wr = t.gather_rows(rel_proj, &wr_rows);
                let rh = t.matmul(h_emb, wr);
                order.extend_from_slice(idx);
                blocks = Some(match blocks {
                    Some(acc) => t.concat_rows(acc, rh),
                    None => rh,
                });
            }
            // order[p] = memory index at stacked position p; invert it.
            let mut inv = vec![0usize; n_mem];
            for (p, &m) in order.iter().enumerate() {
                inv[m] = p;
            }
            let rh_all = t.gather_rows(blocks.expect("non-empty hop"), &inv); // (M × d)

            // Attention p = softmax(vᵀ R h) per sample.
            let sample_of_mem: Vec<usize> = (0..n_mem).map(|m| m / s_per_hop).collect();
            let v_rows = t.gather_rows(v, &sample_of_mem);
            let p_raw = t.rowwise_dot(rh_all, v_rows);
            let offsets: Arc<Vec<usize>> = Arc::new((0..=b).map(|i| i * s_per_hop).collect());
            let att = t.segment_softmax(p_raw, offsets);

            // Hop response o = Σ p · e_t.
            let t_emb = t.gather_rows(ent, &tails);
            let weighted = t.mul_broadcast_col(t_emb, att);
            let o = t.segment_sum(weighted, Arc::new(sample_of_mem), b);
            u_rep = Some(match u_rep {
                Some(acc) => t.add(acc, o),
                None => o,
            });
        }
        let u_rep = u_rep.expect("at least one hop");
        t.rowwise_dot(u_rep, v)
    }

    /// Plain-linalg forward used at evaluation time (mathematically
    /// identical to [`Self::batch_scores`]; cross-checked in tests).
    fn eval_score(&self, user: usize, item_entity: usize) -> f32 {
        let d = self.config.base.embed_dim;
        let ent = self.store.value(self.ent_emb);
        let proj = self.store.value(self.rel_proj);
        let v = ent.row(item_entity);
        let mut score_vec = vec![0.0f32; d];
        for hop in &self.ripple_sets[user] {
            // p_raw[m] = vᵀ R_r h
            let mut p: Vec<f32> = hop
                .iter()
                .map(|&(h, r, _)| {
                    let (h, r) = (h as usize, r as usize);
                    let h_emb = ent.row(h);
                    let mut acc = 0.0;
                    for (col, &vc) in v.iter().enumerate() {
                        // (R h)[col] = Σ_row R[row, col] h[row]
                        let mut rh = 0.0;
                        for (row, &hv) in h_emb.iter().enumerate() {
                            rh += proj[(r * d + row, col)] * hv;
                        }
                        acc += vc * rh;
                    }
                    acc
                })
                .collect();
            ops::softmax_in_place(&mut p);
            for (&(_, _, tl), &w) in hop.iter().zip(&p) {
                for (o, &tv) in score_vec.iter_mut().zip(ent.row(tl as usize)) {
                    *o += w * tv;
                }
            }
        }
        dot(&score_vec, v)
    }
}

impl Recommender for RippleNet {
    fn name(&self) -> String {
        "RippleNet".into()
    }

    fn train_epoch(&mut self, ctx: &TrainContext<'_>, rng: &mut StdRng) -> f32 {
        let n_batches = ctx.batches_per_epoch(self.config.base.batch_size);
        let mut total = 0.0;
        for _ in 0..n_batches {
            let batch = sample_bpr_batch(ctx.inter, self.config.base.batch_size, rng);
            if batch.is_empty() {
                return 0.0;
            }
            let users: Vec<usize> = batch.iter().map(|s| s.user as usize).collect();
            let pos: Vec<usize> = batch.iter().map(|s| ctx.ckg.item_entity(s.pos)).collect();
            let neg: Vec<usize> = batch.iter().map(|s| ctx.ckg.item_entity(s.neg)).collect();

            let mut t = Tape::new();
            let ent = t.leaf(self.store.value(self.ent_emb).clone());
            let proj = t.leaf(self.store.value(self.rel_proj).clone());
            let y_pos = self.batch_scores(&mut t, ent, proj, &users, &pos);
            let y_neg = self.batch_scores(&mut t, ent, proj, &users, &neg);
            let diff = t.sub(y_pos, y_neg);
            let ls = t.log_sigmoid(diff);
            let s = t.sum_all(ls);
            let bpr = t.scale(s, -1.0 / batch.len() as f32);
            let rp = t.frobenius_sq(proj);
            let reg = t.scale(rp, self.config.base.l2);
            let loss = t.add(bpr, reg);
            total += t.value(loss)[(0, 0)];
            t.backward(loss);
            let grads: Vec<_> = [(self.ent_emb, ent), (self.rel_proj, proj)]
                .into_iter()
                .filter_map(|(p, var)| t.take_grad(var).map(|g| (p, g.into())))
                .collect();
            self.store.apply(&mut self.adam, &grads);
        }
        total / n_batches as f32
    }

    fn prepare_eval(&mut self, ctx: &TrainContext<'_>) {
        self.n_items = ctx.inter.n_items;
        self.n_users_entities = ctx.ckg.n_users;
    }

    fn score_items(&self, user: Id) -> Vec<f32> {
        (0..self.n_items)
            .map(|i| self.eval_score(user as usize, self.n_users_entities + i))
            .collect()
    }

    fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn save_state(&self) -> ModelState {
        ModelState::capture(&self.store, &self.adam)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CkptError> {
        state.restore(&mut self.store, &mut self.adam)?;
        Ok(())
    }

    fn scale_lr(&mut self, factor: f32) {
        self.adam.lr *= factor;
    }

    fn params_finite(&mut self) -> bool {
        self.store.touched_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{auc, toy_world};

    fn fast_config() -> RippleConfig {
        RippleConfig { base: ModelConfig::fast(), n_hops: 2, memories_per_hop: 8 }
    }

    #[test]
    fn ripple_sets_have_fixed_shape_and_valid_edges() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let model = RippleNet::new(&ctx, &fast_config());
        for (u, hops) in model.ripple_sets.iter().enumerate() {
            assert_eq!(hops.len(), 2);
            for hop in hops {
                assert_eq!(hop.len(), 8);
                for &(h, r, t) in hop {
                    if h != t || r != 0 {
                        // Real edge (not a fallback self-loop): verify.
                        assert!(
                            ckg.neighbors(h as usize).any(|(rr, tt)| rr == r && tt == t),
                            "user {u}: ({h},{r},{t}) not an edge"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn eval_score_matches_tape_forward() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let model = RippleNet::new(&ctx, &fast_config());
        let users = vec![0usize, 1, 2];
        let items: Vec<usize> = vec![ckg.item_entity(0), ckg.item_entity(3), ckg.item_entity(5)];
        let mut t = Tape::new();
        let ent = t.constant(model.store.value(model.ent_emb).clone());
        let proj = t.constant(model.store.value(model.rel_proj).clone());
        let y = model.batch_scores(&mut t, ent, proj, &users, &items);
        for (s, (&u, &ie)) in users.iter().zip(&items).enumerate() {
            let tape_score = t.value(y)[(s, 0)];
            let eval = model.eval_score(u, ie);
            assert!(
                (tape_score - eval).abs() < 1e-4,
                "sample {s}: tape {tape_score} vs eval {eval}"
            );
        }
    }

    #[test]
    fn ripplenet_learns_toy_world() {
        let (inter, ckg) = toy_world();
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = RippleNet::new(&ctx, &fast_config());
        let mut rng = seeded_rng(1);
        let first = model.train_epoch(&ctx, &mut rng);
        let mut last = first;
        for _ in 0..40 {
            last = model.train_epoch(&ctx, &mut rng);
        }
        assert!(last < first, "RippleNet loss should fall: {first} -> {last}");
        model.prepare_eval(&ctx);
        let a = auc(&model, &inter);
        assert!(a > 0.6, "RippleNet AUC {a}");
    }
}
