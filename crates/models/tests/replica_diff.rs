//! Differential tests for deterministic data-parallel replica training.
//!
//! The replica macro-step has a **fixed width** (`MACRO_WIDTH`
//! micro-batches per optimizer step) and per-batch RNG streams, so the
//! gradient schedule is a pure function of the seed: the `--replicas`
//! value only picks how many threads execute it. `R = 1` runs the exact
//! schedule inline on the calling thread (no spawns) — it *is* the
//! single-threaded reference — and every `R ≥ 2` must reproduce it
//! bitwise: same per-epoch losses, same final parameters, dropout on or
//! off.

use facility_kg::{CkgBuilder, Id, Interactions, KnowledgeSource, SourceMask};
use facility_linalg::seeded_rng;
use facility_models::bprmf::Bprmf;
use facility_models::cfkg::Cfkg;
use facility_models::ckat::{Aggregator, Ckat, CkatConfig};
use facility_models::{ModelConfig, Recommender, TrainContext};

/// The same toy world the in-crate unit tests use: 4 users, 6 items, two
/// co-location pairs, and location/data-type attributes.
fn toy_world() -> (Interactions, facility_kg::Ckg) {
    let events: Vec<(Id, Id)> =
        vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 3), (2, 2), (2, 4), (3, 1), (3, 5)];
    let inter = Interactions::split(4, 6, &events, 0.0, &mut seeded_rng(0));
    let mut b = CkgBuilder::new(4, 6);
    b.add_interactions(&inter.train_pairs);
    b.add_user_user(&[(0, 1), (2, 3)]);
    for i in 0..6u32 {
        b.add_item_attribute(KnowledgeSource::Loc, "locatedAt", i, format!("site:{}", i % 2));
        b.add_item_attribute(KnowledgeSource::Dkg, "hasDataType", i, format!("type:{}", i % 3));
    }
    (inter, b.build(SourceMask::all()))
}

fn base_config(replicas: usize, keep_prob: f32) -> ModelConfig {
    let mut base = ModelConfig::fast();
    base.batch_size = 4; // several macro-steps per epoch on the toy world
    base.keep_prob = keep_prob;
    base.replicas = replicas;
    base
}

fn ckat_config(replicas: usize, keep_prob: f32) -> CkatConfig {
    CkatConfig {
        layer_dims: vec![16, 8],
        use_attention: true,
        aggregator: Aggregator::Concat,
        transr_dim: 16,
        margin: 1.0,
        batch_local: true,
        hub_cache: true,
        // The toy world is tiny; 0.99 selects no hubs, so these tests run
        // the plain union-extraction path unless they lower it.
        hub_percentile: 0.99,
        base: base_config(replicas, keep_prob),
    }
}

/// `ckat_config` with the hub-representation cache actually *active*:
/// a low percentile so the toy world has hubs.
fn ckat_hub_config(replicas: usize, keep_prob: f32) -> CkatConfig {
    let mut cfg = ckat_config(replicas, keep_prob);
    cfg.hub_percentile = 0.25;
    cfg
}

fn assert_states_bitwise(a: &dyn Recommender, b: &dyn Recommender, what: &str) {
    let (sa, sb) = (a.save_state(), b.save_state());
    assert_eq!(sa.params.len(), sb.params.len(), "{what}: param count");
    for ((na, ma), (nb, mb)) in sa.params.iter().zip(&sb.params) {
        assert_eq!(na, nb, "{what}: param order");
        assert_eq!(ma.shape(), mb.shape(), "{what}: `{na}` shape");
        for (idx, (x, y)) in ma.as_slice().iter().zip(mb.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: `{na}` scalar {idx} differs: {x} vs {y}");
        }
    }
}

/// Train the same model under every replica count and demand identical
/// loss trajectories and final parameters. `R = 1` is the serial
/// reference (inline execution, no worker threads), so this subsumes
/// both "R=1 matches the single-threaded path" and "R∈{2,4} match each
/// other".
fn assert_replica_counts_match<M, F>(build: F, epochs: usize, what: &str)
where
    M: Recommender,
    F: Fn(&TrainContext<'_>, usize) -> M,
{
    let (inter, ckg) = toy_world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut reference = build(&ctx, 1);
    let mut ref_losses = Vec::new();
    let mut rng = seeded_rng(42);
    for _ in 0..epochs {
        ref_losses.push(reference.train_epoch(&ctx, &mut rng));
    }
    for replicas in [2usize, 4, 8] {
        let mut model = build(&ctx, replicas);
        let mut rng = seeded_rng(42);
        for (epoch, &ref_loss) in ref_losses.iter().enumerate() {
            let loss = model.train_epoch(&ctx, &mut rng);
            assert_eq!(
                loss.to_bits(),
                ref_loss.to_bits(),
                "{what}: epoch {epoch} loss diverged at R={replicas}: {loss} vs {ref_loss}"
            );
        }
        assert_states_bitwise(&reference, &model, &format!("{what} R={replicas}"));
    }
}

#[test]
fn ckat_replica_counts_produce_identical_runs() {
    assert_replica_counts_match(
        |ctx, r| Ckat::new(ctx, &ckat_config(r, 1.0)),
        3,
        "CKAT (no dropout)",
    );
}

/// Dropout draws come from each batch's private stream, so the replica
/// schedule stays thread-count-invariant even with dropout *on* — a
/// property the legacy shared-stream path never had.
#[test]
fn ckat_replica_counts_match_with_dropout_on() {
    assert_replica_counts_match(
        |ctx, r| Ckat::new(ctx, &ckat_config(r, 0.7)),
        3,
        "CKAT (dropout 0.7)",
    );
}

/// The hub-representation cache recomputes against the frozen snapshot
/// once per macro-step on the main thread, so it is part of the fixed
/// schedule: runs must stay bitwise identical across replica counts with
/// the cache *on* — with and without dropout.
#[test]
fn ckat_replica_counts_match_with_hub_cache_on() {
    assert_replica_counts_match(
        |ctx, r| {
            let model = Ckat::new(ctx, &ckat_hub_config(r, 1.0));
            assert!(model.hub_count() > 0, "percentile 0.25 must select hubs");
            model
        },
        3,
        "CKAT (hub cache)",
    );
    assert_replica_counts_match(
        |ctx, r| Ckat::new(ctx, &ckat_hub_config(r, 0.7)),
        3,
        "CKAT (hub cache, dropout 0.7)",
    );
}

#[test]
fn bprmf_replica_counts_produce_identical_runs() {
    assert_replica_counts_match(|ctx, r| Bprmf::new(ctx, &base_config(r, 1.0)), 4, "BPRMF");
}

#[test]
fn cfkg_replica_counts_produce_identical_runs() {
    assert_replica_counts_match(|ctx, r| Cfkg::new(ctx, &base_config(r, 1.0)), 4, "CFKG");
}

/// The replica path must actually train, not just be self-consistent.
#[test]
fn ckat_replica_mode_learns() {
    let (inter, ckg) = toy_world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut model = Ckat::new(&ctx, &ckat_config(2, 1.0));
    let mut rng = seeded_rng(7);
    let first = model.train_epoch(&ctx, &mut rng);
    let mut last = first;
    for _ in 0..30 {
        last = model.train_epoch(&ctx, &mut rng);
    }
    assert!(last < first, "replica-mode CKAT loss should fall: {first} -> {last}");
    assert!(model.replicas() == 2, "model reports its replica count");
}

/// The profile in replica mode reports the corrected accounting: union
/// extraction charged to both aggregate CPU (`extract_ns`) and the
/// critical path (`extract_wall_ns`), no phantom `extract_wait_ns` (the
/// old prepare-phase barrier misattribution), the fold time, the wall
/// clock, and the replica count.
#[test]
fn replica_profile_reports_pool_accounting() {
    let (inter, ckg) = toy_world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut model = Ckat::new(&ctx, &ckat_config(4, 1.0));
    let mut rng = seeded_rng(9);
    model.train_epoch(&ctx, &mut rng);
    let prof = model.take_epoch_profile().expect("profile recorded");
    assert_eq!(prof.replicas, 4);
    assert!(prof.batches >= 1);
    assert!(prof.extract_ns > 0, "aggregate extraction CPU recorded");
    assert!(prof.extract_wall_ns > 0, "union extraction sits on the critical path");
    assert_eq!(
        prof.extract_wait_ns, 0,
        "replica mode never blocks on a prefetch channel — the old \
         prepare-barrier misattribution must stay gone"
    );
    assert_eq!(prof.hub_cache_ns, 0, "no hubs selected at percentile 0.99");
    assert!(prof.wall_ns > 0, "wall clock stamped");
    assert!(prof.gathered_rows <= prof.full_rows);

    // With the hub cache active, the refresh is timed and the cache's
    // full-graph pass is accounted as gathered work.
    let mut hub = Ckat::new(&ctx, &ckat_hub_config(2, 1.0));
    hub.train_epoch(&ctx, &mut rng);
    let hprof = hub.take_epoch_profile().expect("profile recorded");
    assert!(hprof.hub_cache_ns > 0, "hub cache refresh timed");
    assert_eq!(hprof.extract_wait_ns, 0);

    // The legacy path stamps wall_ns too, and reports replicas = 0.
    let mut legacy = Ckat::new(&ctx, &ckat_config(0, 1.0));
    legacy.train_epoch(&ctx, &mut rng);
    let lprof = legacy.take_epoch_profile().expect("profile recorded");
    assert_eq!(lprof.replicas, 0);
    assert!(lprof.wall_ns > 0);
    // Time the training loop spends blocked on the prefetch channel is
    // split: the share covered by extraction CPU is critical-path wall
    // (the old reading pinned this at 0 even when the worker could not
    // keep up), anything beyond it stays wait.
    assert!(
        lprof.extract_wall_ns <= lprof.extract_ns,
        "critical-path share is capped by extraction CPU"
    );
    assert_eq!(lprof.reduce_ns, 0, "no fold step on the per-batch path");
}
