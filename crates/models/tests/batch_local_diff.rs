//! Differential test: CKAT's batch-local subgraph propagation against the
//! full-graph oracle.
//!
//! The subgraph engine (`facility_kg::SubgraphScratch`) assigns local ids
//! with interior nodes sorted by global id and copies full CSR edge
//! slices, so per-segment message sums and backward scatter-adds
//! accumulate in the same float order as full-graph propagation. Under
//! `keep_prob = 1.0` (no dropout RNG draws) the two modes must therefore
//! produce *identical* training trajectories — same per-epoch losses,
//! same parameters, same final representations — not merely close ones.

use facility_kg::sampling::sample_bpr_batch;
use facility_kg::{
    BatchSubgraph, CkgBuilder, Id, Interactions, KnowledgeSource, SourceMask, SubgraphScratch,
};
use facility_linalg::seeded_rng;
use facility_models::ckat::{Aggregator, Ckat, CkatConfig};
use facility_models::{ModelConfig, Recommender, TrainContext};

/// The same toy world the in-crate unit tests use: 4 users, 6 items, two
/// co-location pairs, and location/data-type attributes.
fn toy_world() -> (Interactions, facility_kg::Ckg) {
    let events: Vec<(Id, Id)> =
        vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 3), (2, 2), (2, 4), (3, 1), (3, 5)];
    let inter = Interactions::split(4, 6, &events, 0.0, &mut seeded_rng(0));
    let mut b = CkgBuilder::new(4, 6);
    b.add_interactions(&inter.train_pairs);
    b.add_user_user(&[(0, 1), (2, 3)]);
    for i in 0..6u32 {
        b.add_item_attribute(KnowledgeSource::Loc, "locatedAt", i, format!("site:{}", i % 2));
        b.add_item_attribute(KnowledgeSource::Dkg, "hasDataType", i, format!("type:{}", i % 3));
    }
    (inter, b.build(SourceMask::all()))
}

fn config(layer_dims: Vec<usize>, aggregator: Aggregator, batch_local: bool) -> CkatConfig {
    let mut base = ModelConfig::fast();
    base.keep_prob = 1.0; // dropout draws would desynchronize the RNG streams
    CkatConfig {
        layer_dims,
        use_attention: true,
        aggregator,
        transr_dim: 16,
        margin: 1.0,
        batch_local,
        hub_cache: true,
        hub_percentile: 0.99,
        base,
    }
}

/// Train both modes side by side and compare losses epoch by epoch, then
/// the final representations element by element.
fn assert_modes_match(layer_dims: Vec<usize>, aggregator: Aggregator) {
    let (inter, ckg) = toy_world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut local = Ckat::new(&ctx, &config(layer_dims.clone(), aggregator, true));
    let mut full = Ckat::new(&ctx, &config(layer_dims, aggregator, false));
    let mut rng_local = seeded_rng(42);
    let mut rng_full = seeded_rng(42);

    for epoch in 0..2 {
        let l_local = local.train_epoch(&ctx, &mut rng_local);
        let l_full = full.train_epoch(&ctx, &mut rng_full);
        assert!(
            (l_local - l_full).abs() < 1e-4,
            "epoch {epoch}: batch-local loss {l_local} != full-graph loss {l_full}"
        );
    }

    local.prepare_eval(&ctx);
    full.prepare_eval(&ctx);
    let reps_local = local.entity_representations();
    let reps_full = full.entity_representations();
    assert_eq!(reps_local.shape(), reps_full.shape());
    for r in 0..reps_local.rows() {
        for c in 0..reps_local.cols() {
            let (a, b) = (reps_local[(r, c)], reps_full[(r, c)]);
            assert!(
                (a - b).abs() < 1e-4,
                "representation mismatch at ({r},{c}): batch-local {a} vs full {b}"
            );
        }
    }
}

#[test]
fn losses_and_representations_match_at_depth_two() {
    assert_modes_match(vec![16, 8], Aggregator::Concat);
}

#[test]
fn losses_and_representations_match_at_depth_one_and_three() {
    assert_modes_match(vec![16], Aggregator::Concat);
    assert_modes_match(vec![16, 8, 4], Aggregator::Concat);
}

#[test]
fn losses_and_representations_match_with_sum_aggregator() {
    assert_modes_match(vec![16, 8], Aggregator::Sum);
}

fn assert_subgraphs_bitwise_equal(a: &BatchSubgraph, b: &BatchSubgraph, what: &str) {
    assert_eq!(a.nodes, b.nodes, "{what}: nodes");
    assert_eq!(a.n_interior, b.n_interior, "{what}: n_interior");
    assert_eq!(a.seed_locals, b.seed_locals, "{what}: seed_locals");
    assert_eq!(a.edge_ids, b.edge_ids, "{what}: edge_ids");
    assert_eq!(a.tails, b.tails, "{what}: tails");
    assert_eq!(a.heads, b.heads, "{what}: heads");
}

/// Macro-step union extraction is an optimization, not a semantic change:
/// for every macro width the per-batch subgraphs derived from one
/// `extract_many` traversal must be **bitwise identical** — same node
/// order, same edge list, same seed locals — to independent `extract`
/// calls on realistically sampled batch seed sets.
#[test]
fn union_extraction_matches_independent_extraction_at_all_widths() {
    let (inter, ckg) = toy_world();
    let depth = 2;
    let mut union_scratch = SubgraphScratch::new(ckg.n_entities());
    let mut solo_scratch = SubgraphScratch::new(ckg.n_entities());
    let mut rng = seeded_rng(99);
    for width in [1usize, 2, 4, 8] {
        let seed_sets: Vec<Vec<usize>> = (0..width)
            .map(|_| {
                let bpr = sample_bpr_batch(&inter, 4, &mut rng);
                let mut s: Vec<usize> = bpr.iter().map(|x| x.user as usize).collect();
                s.extend(bpr.iter().map(|x| ckg.item_entity(x.pos)));
                s.extend(bpr.iter().map(|x| ckg.item_entity(x.neg)));
                s
            })
            .collect();
        let union = union_scratch.extract_many(&ckg, &seed_sets, depth, None);
        assert_eq!(union.subgraphs.len(), width);
        for (b, seeds) in seed_sets.iter().enumerate() {
            let solo = solo_scratch.extract(&ckg, seeds, depth);
            assert_subgraphs_bitwise_equal(
                &union.subgraphs[b],
                &solo,
                &format!("width {width}, batch {b}"),
            );
        }
    }
}

/// The equivalence is in fact bitwise, not merely within tolerance: the
/// subgraph preserves the exact accumulation order of every float sum
/// that reaches the loss, and Adam sees an identical dense gradient.
#[test]
fn two_epoch_trajectories_are_bitwise_identical() {
    let (inter, ckg) = toy_world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut local = Ckat::new(&ctx, &config(vec![16, 8], Aggregator::Concat, true));
    let mut full = Ckat::new(&ctx, &config(vec![16, 8], Aggregator::Concat, false));
    let mut rng_local = seeded_rng(7);
    let mut rng_full = seeded_rng(7);
    for _ in 0..2 {
        let a = local.train_epoch(&ctx, &mut rng_local);
        let b = full.train_epoch(&ctx, &mut rng_full);
        assert_eq!(a.to_bits(), b.to_bits(), "losses diverged");
    }
    local.prepare_eval(&ctx);
    full.prepare_eval(&ctx);
    let ra = local.entity_representations();
    let rb = full.entity_representations();
    for (x, y) in ra.as_slice().iter().zip(rb.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "representations diverged");
    }
}
