//! Differential test: CKAT's tape-based propagation must match a naive
//! per-entity reference implementation of Eqs. 3, 6, 10 computed with
//! plain loops. This pins the segment-op plumbing (gather → weight →
//! scatter-sum → aggregate → normalize → concat) to the math.

// The reference implementation deliberately uses the paper's index
// notation rather than iterator chains.
#![allow(clippy::needless_range_loop)]

use facility_kg::{CkgBuilder, Id, Interactions, KnowledgeSource, SourceMask};
use facility_linalg::{matrix::dot, ops, seeded_rng, Matrix};
use facility_models::ckat::{Aggregator, Ckat, CkatConfig};
use facility_models::{ModelConfig, Recommender, TrainContext};

fn world() -> (Interactions, facility_kg::Ckg) {
    let events: Vec<(Id, Id)> = vec![(0, 0), (0, 1), (1, 2), (1, 0), (2, 3), (2, 1)];
    let inter = Interactions::split(3, 4, &events, 0.0, &mut seeded_rng(0));
    let mut b = CkgBuilder::new(3, 4);
    b.add_interactions(&inter.train_pairs);
    b.add_user_user(&[(0, 2)]);
    for i in 0..4u32 {
        b.add_item_attribute(KnowledgeSource::Dkg, "hasDataType", i, format!("t{}", i % 2));
    }
    (inter, b.build(SourceMask::all()))
}

/// Naive reference propagation with explicit loops.
fn reference_representations(
    ckg: &facility_kg::Ckg,
    e0: &Matrix,
    att: &[f32],
    layer_w: &[Matrix],
    layer_b: &[Matrix],
    dims: &[usize],
) -> Matrix {
    let n = ckg.n_entities();
    let mut all = e0.clone();
    let mut h = e0.clone();
    for (l, &out_dim) in dims.iter().enumerate() {
        let d = h.cols();
        // e_N[h] = Σ_{edges out of h} att_e · h_prev[tail_e]   (Eq. 3)
        let mut e_n = Matrix::zeros(n, d);
        for ent in 0..n {
            for k in ckg.offsets[ent]..ckg.offsets[ent + 1] {
                let tail = ckg.tails[k] as usize;
                for c in 0..d {
                    e_n[(ent, c)] += att[k] * h[(tail, c)];
                }
            }
        }
        // concat aggregator: LeakyReLU(W [h ‖ e_N] + b)   (Eq. 6)
        let mut next = Matrix::zeros(n, out_dim);
        for ent in 0..n {
            for c in 0..out_dim {
                let mut acc = layer_b[l][(0, c)];
                for k in 0..d {
                    acc += h[(ent, k)] * layer_w[l][(k, c)];
                    acc += e_n[(ent, k)] * layer_w[l][(d + k, c)];
                }
                next[(ent, c)] = ops::leaky_relu(acc);
            }
        }
        // Per-layer L2 normalization.
        next.normalize_rows();
        all = all.concat_cols(&next);
        h = next;
    }
    all
}

#[test]
fn tape_propagation_matches_naive_reference() {
    let (inter, ckg) = world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let dims = vec![6usize, 3];
    let base = ModelConfig { embed_dim: 6, keep_prob: 1.0, ..ModelConfig::fast() };
    let config = CkatConfig {
        layer_dims: dims.clone(),
        use_attention: true,
        aggregator: Aggregator::Concat,
        transr_dim: 6,
        margin: 1.0,
        batch_local: true,
        hub_cache: true,
        hub_percentile: 0.99,
        base,
    };
    let mut model = Ckat::new(&ctx, &config);
    // One epoch to get non-trivial (trained) parameters + fresh attention.
    let mut rng = seeded_rng(1);
    model.train_epoch(&ctx, &mut rng);
    model.prepare_eval(&ctx);

    let tape_reps = model.entity_representations();
    let att = model.attention_weights().to_vec();
    assert_eq!(att.len(), ckg.n_edges());

    // Recover the raw parameters through the public debug surface: the
    // first `embed_dim` columns of the representations are e0 itself.
    let e0_cols: Vec<usize> = (0..6).collect();
    let mut e0 = Matrix::zeros(ckg.n_entities(), 6);
    for r in 0..ckg.n_entities() {
        for &c in &e0_cols {
            e0[(r, c)] = tape_reps[(r, c)];
        }
    }
    let (layer_w, layer_b) = model.layer_parameters();
    let reference = reference_representations(&ckg, &e0, &att, &layer_w, &layer_b, &dims);

    assert_eq!(reference.shape(), tape_reps.shape());
    for r in 0..reference.rows() {
        for c in 0..reference.cols() {
            let (a, b) = (reference[(r, c)], tape_reps[(r, c)]);
            assert!((a - b).abs() < 1e-4, "mismatch at ({r},{c}): reference {a} vs tape {b}");
        }
    }

    // Sanity: scores derived from the representations match score_items.
    let scores = model.score_items(0);
    for i in 0..inter.n_items {
        let manual =
            dot(tape_reps.row(ckg.user_entity(0)), tape_reps.row(ckg.item_entity(i as Id)));
        assert!((scores[i] - manual).abs() < 1e-4);
    }
}
