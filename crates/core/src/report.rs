//! Plain-text table formatting for the experiment harness — the bench
//! binaries print tables shaped like the paper's.

use std::fmt::Write as _;

/// Render a fixed-width table: a header row, a separator, and data rows.
/// Column widths adapt to content. Panics if a row's length differs from
/// the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), headers.len(), "row {i} has wrong arity");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: Vec<String>, out: &mut String| {
        let mut first = true;
        for (w, cell) in widths.iter().zip(cells) {
            if !first {
                out.push_str("  ");
            }
            first = false;
            let _ = write!(out, "{cell:<w$}", w = w);
        }
        out.push('\n');
    };
    line(headers.iter().map(|s| s.to_string()).collect(), &mut out);
    line(widths.iter().map(|w| "-".repeat(*w)).collect(), &mut out);
    for row in rows {
        line(row.clone(), &mut out);
    }
    out
}

/// Format a metric to the paper's 4-decimal convention.
pub fn metric(x: f64) -> String {
    format!("{x:.4}")
}

/// Percentage improvement of `ours` over `best_baseline`, as the paper's
/// "% Impro." row.
pub fn improvement_pct(ours: f64, best_baseline: f64) -> f64 {
    if best_baseline <= 0.0 {
        return 0.0;
    }
    (ours - best_baseline) / best_baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_layout_aligns_columns() {
        let t = format_table(
            &["Model", "recall@20"],
            &[vec!["BPRMF".into(), "0.1935".into()], vec!["CKAT".into(), "0.3217".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Model"));
        assert!(lines[1].starts_with("-----"));
        assert!(lines[3].contains("0.3217"));
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn mismatched_row_panics() {
        format_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn improvement_matches_paper_arithmetic() {
        // Paper Table II: CKAT 0.3217 over KGCN 0.3020 → 6.1237 %.
        let pct = improvement_pct(0.3217, 0.3020);
        assert!((pct - 6.5231).abs() < 0.5, "pct {pct}");
        assert_eq!(improvement_pct(1.0, 0.0), 0.0);
    }

    #[test]
    fn metric_uses_four_decimals() {
        assert_eq!(metric(0.32169), "0.3217");
    }
}
