//! Plain-text table formatting for the experiment harness — the bench
//! binaries print tables shaped like the paper's.

use std::fmt::Write as _;

/// Render a fixed-width table: a header row, a separator, and data rows.
/// Column widths adapt to content. Panics if a row's length differs from
/// the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), headers.len(), "row {i} has wrong arity");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: Vec<String>, out: &mut String| {
        let mut first = true;
        for (w, cell) in widths.iter().zip(cells) {
            if !first {
                out.push_str("  ");
            }
            first = false;
            let _ = write!(out, "{cell:<w$}", w = w);
        }
        out.push('\n');
    };
    line(headers.iter().map(|s| s.to_string()).collect(), &mut out);
    line(widths.iter().map(|w| "-".repeat(*w)).collect(), &mut out);
    for row in rows {
        line(row.clone(), &mut out);
    }
    out
}

/// Format a metric to the paper's 4-decimal convention.
pub fn metric(x: f64) -> String {
    format!("{x:.4}")
}

/// Percentage improvement of `ours` over `best_baseline`, as the paper's
/// "% Impro." row.
pub fn improvement_pct(ours: f64, best_baseline: f64) -> f64 {
    if best_baseline <= 0.0 {
        return 0.0;
    }
    (ours - best_baseline) / best_baseline * 100.0
}

/// Header of the per-run summary table kept in `EXPERIMENTS.md` (see
/// "Run ledger" there): one row per recorded run, wiring the per-phase
/// timings of `BENCH_ckat_epoch.json` and the trainer's fault-tolerance
/// counters into the experiments ledger.
pub const RUN_SUMMARY_HEADER: &str = "| model | epochs | best recall@K | best epoch | sampling ms \
     | attention ms | forward ms | backward ms | eval ms | divergences | retries | resumed |\n\
     |---|---|---|---|---|---|---|---|---|---|---|---|";

/// One markdown row for the `EXPERIMENTS.md` run ledger: per-phase wall
/// time summed over the run's [`EpochProfile`]s plus the divergence /
/// retry counters of the [`TrainReport`].
///
/// [`EpochProfile`]: facility_models::EpochProfile
pub fn run_summary_row(report: &facility_eval::TrainReport) -> String {
    let ms = |ns: u64| format!("{:.1}", ns as f64 / 1e6);
    let mut sampling = 0u64;
    let mut attention = 0u64;
    let mut forward = 0u64;
    let mut backward = 0u64;
    let mut eval = 0u64;
    for log in &report.logs {
        if let Some(p) = &log.profile {
            sampling += p.sampling_ns;
            attention += p.attention_ns;
            forward += p.forward_ns;
            // The ledger's backward column predates the backward/optimizer
            // split and keeps meaning "everything after the forward pass";
            // prefetch wait, critical-path extraction, and the hub-cache
            // refresh ride along for the same reason.
            backward += p.backward_ns
                + p.optimizer_ns
                + p.extract_wait_ns
                + p.extract_wall_ns
                + p.hub_cache_ns;
            eval += p.eval_ns;
        }
    }
    let retries = report.divergences.iter().map(|d| d.retry).max().unwrap_or(0);
    format!(
        "| {} | {} | {:.4} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
        report.model,
        report.logs.len(),
        report.best.recall,
        report.best_epoch,
        ms(sampling),
        ms(attention),
        ms(forward),
        ms(backward),
        ms(eval),
        report.divergences.len(),
        retries,
        report.resumed_from.map_or("—".to_string(), |e| format!("epoch {e}")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_layout_aligns_columns() {
        let t = format_table(
            &["Model", "recall@20"],
            &[vec!["BPRMF".into(), "0.1935".into()], vec!["CKAT".into(), "0.3217".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Model"));
        assert!(lines[1].starts_with("-----"));
        assert!(lines[3].contains("0.3217"));
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn mismatched_row_panics() {
        format_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn run_summary_row_aggregates_phases_and_counters() {
        use facility_eval::trainer::{DivergenceCause, DivergenceEvent, EpochLog};
        use facility_eval::{EvalResult, TrainReport};
        use facility_models::EpochProfile;
        let report = TrainReport {
            best: EvalResult {
                recall: 0.31,
                ndcg: 0.2,
                precision: 0.1,
                hit: 1.0,
                n_users: 4,
                k: 5,
            },
            best_epoch: 2,
            logs: vec![
                EpochLog {
                    epoch: 1,
                    loss: 0.5,
                    eval: None,
                    profile: Some(EpochProfile {
                        sampling_ns: 1_000_000,
                        forward_ns: 2_000_000,
                        ..Default::default()
                    }),
                },
                EpochLog {
                    epoch: 2,
                    loss: 0.4,
                    eval: None,
                    profile: Some(EpochProfile {
                        sampling_ns: 500_000,
                        backward_ns: 4_000_000,
                        ..Default::default()
                    }),
                },
            ],
            model: "CKAT".into(),
            divergences: vec![DivergenceEvent {
                epoch: 2,
                retry: 1,
                loss: f32::NAN,
                cause: DivergenceCause::NonFiniteLoss,
            }],
            resumed_from: Some(1),
            interrupted: false,
        };
        let row = run_summary_row(&report);
        assert!(row.starts_with("| CKAT | 2 | 0.3100 | 2 |"), "{row}");
        assert!(row.contains("| 1.5 |"), "summed sampling ms: {row}");
        assert!(row.contains("| 4.0 |"), "backward ms: {row}");
        assert!(row.ends_with("| 1 | 1 | epoch 1 |"), "{row}");
        assert_eq!(
            RUN_SUMMARY_HEADER.lines().next().unwrap().matches('|').count(),
            row.matches('|').count(),
            "header and row arity agree"
        );
    }

    #[test]
    fn improvement_matches_paper_arithmetic() {
        // Paper Table II: CKAT 0.3217 over KGCN 0.3020 → 6.1237 %.
        let pct = improvement_pct(0.3217, 0.3020);
        assert!((pct - 6.5231).abs() < 0.5, "pct {pct}");
        assert_eq!(improvement_pct(1.0, 0.0), 0.0);
    }

    #[test]
    fn metric_uses_four_decimals() {
        assert_eq!(metric(0.32169), "0.3217");
    }
}
