#![warn(missing_docs)]

//! # facility-ckat
//!
//! End-to-end pipeline for knowledge-network data discovery, tying the
//! workspace together:
//!
//! ```text
//! FacilityConfig ─→ Trace (simulated query log)
//!        │                 │ 80/20 per-user split
//!        │                 ▼
//!        │           Interactions ──┐
//!        │                 │        │ training pairs only
//!        ▼                 │        ▼
//!   knowledge facts ───────┴──→ CKG (entity alignment, SourceMask)
//!                                   │
//!                                   ▼
//!                  Recommender (CKAT or baseline) + Trainer
//!                                   │
//!                                   ▼
//!                 recall@20 / ndcg@20, top-K recommendations
//! ```
//!
//! The central type is [`Experiment`]: prepare one per (facility, seed,
//! source-mask) and run any number of models against it — Tables II–V are
//! exactly that loop with different model configurations.
//!
//! ```
//! use facility_ckat::{Experiment, ExperimentConfig};
//! use facility_datagen::FacilityConfig;
//! use facility_models::{ModelKind, ModelConfig};
//! use facility_eval::TrainSettings;
//!
//! let exp = Experiment::prepare(&ExperimentConfig {
//!     facility: FacilityConfig::tiny(),
//!     ..ExperimentConfig::default()
//! });
//! let settings = TrainSettings { max_epochs: 2, eval_every: 2, k: 10, ..Default::default() };
//! let report = exp.run_model(ModelKind::Bprmf, &ModelConfig::fast(), &settings);
//! assert!(report.best.recall >= 0.0);
//! ```

pub mod report;

use facility_datagen::{FacilityConfig, Trace};
use facility_eval::{train, train_resumed, try_train, TrainError, TrainReport, TrainSettings};
use facility_kg::{Ckg, Id, Interactions, SourceMask};
use facility_models::ckat::{Ckat, CkatConfig};
use facility_models::{ModelConfig, ModelKind, Recommender, TrainContext};

/// Everything needed to set up one experimental condition.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Facility preset to simulate.
    pub facility: FacilityConfig,
    /// Seed driving trace generation and the split.
    pub seed: u64,
    /// Held-out fraction per user (paper: 0.2).
    pub test_frac: f64,
    /// Knowledge sources in the CKG (Table III ablation).
    pub mask: SourceMask,
    /// Max same-city UUG pairs per city.
    pub uug_pairs_per_city: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            facility: FacilityConfig::ooi(),
            seed: 42,
            test_frac: 0.2,
            mask: SourceMask::all(),
            uug_pairs_per_city: 4,
        }
    }
}

/// A prepared experimental condition: simulated trace, split interactions,
/// and the CKG built from training interactions plus enabled knowledge.
pub struct Experiment {
    /// The generating configuration.
    pub config: ExperimentConfig,
    /// The simulated facility trace.
    pub trace: Trace,
    /// Train/test interaction split.
    pub inter: Interactions,
    /// The collaborative knowledge graph.
    pub ckg: Ckg,
}

impl Experiment {
    /// Simulate the facility, split interactions, and build the CKG.
    pub fn prepare(config: &ExperimentConfig) -> Self {
        let trace = Trace::generate(&config.facility, config.seed);
        let mut rng = facility_linalg::seeded_rng(config.seed ^ 0x517);
        let inter = trace.split_interactions(config.test_frac, &mut rng);
        let mut builder = trace.ckg_builder(config.uug_pairs_per_city);
        builder.add_interactions(&inter.train_pairs);
        let ckg = builder.build(config.mask);
        Self { config: config.clone(), trace, inter, ckg }
    }

    /// Rebuild this experiment's CKG with a different source mask,
    /// keeping the identical trace and split (Table III protocol).
    pub fn with_mask(&self, mask: SourceMask) -> Self {
        let mut builder = self.trace.ckg_builder(self.config.uug_pairs_per_city);
        builder.add_interactions(&self.inter.train_pairs);
        let ckg = builder.build(mask);
        let mut config = self.config.clone();
        config.mask = mask;
        Self {
            config,
            trace: Trace {
                config: self.trace.config.clone(),
                catalog: self.trace.catalog.clone(),
                population: self.trace.population.clone(),
                events: self.trace.events.clone(),
            },
            inter: self.inter.clone(),
            ckg,
        }
    }

    /// Borrowed training context.
    pub fn ctx(&self) -> TrainContext<'_> {
        TrainContext { inter: &self.inter, ckg: &self.ckg }
    }

    /// CKG statistics (Table I).
    pub fn stats(&self) -> facility_kg::CkgStats {
        facility_kg::CkgStats::of(&self.ckg)
    }

    /// Train and evaluate one model kind with shared hyperparameters.
    pub fn run_model(
        &self,
        kind: ModelKind,
        model_config: &ModelConfig,
        settings: &TrainSettings,
    ) -> TrainReport {
        let ctx = self.ctx();
        let mut model = kind.build(&ctx, model_config);
        train(model.as_mut(), &ctx, settings)
    }

    /// Fault-tolerant variant of [`Experiment::run_model`]: surfaces an
    /// exhausted divergence-retry budget or a checkpoint failure as a
    /// structured [`TrainError`] instead of panicking.
    pub fn try_run_model(
        &self,
        kind: ModelKind,
        model_config: &ModelConfig,
        settings: &TrainSettings,
    ) -> Result<TrainReport, TrainError> {
        let ctx = self.ctx();
        let mut model = kind.build(&ctx, model_config);
        try_train(model.as_mut(), &ctx, settings)
    }

    /// Continue training from a checkpoint written by an earlier
    /// (possibly killed) run with the same model kind, configuration, and
    /// settings.
    pub fn resume_model(
        &self,
        kind: ModelKind,
        model_config: &ModelConfig,
        settings: &TrainSettings,
        checkpoint: &std::path::Path,
    ) -> Result<TrainReport, TrainError> {
        let ctx = self.ctx();
        let mut model = kind.build(&ctx, model_config);
        train_resumed(model.as_mut(), &ctx, settings, checkpoint)
    }

    /// Train and evaluate a CKAT variant (attention / aggregator / depth
    /// ablations for Tables IV–V).
    pub fn run_ckat(&self, config: &CkatConfig, settings: &TrainSettings) -> TrainReport {
        let ctx = self.ctx();
        let mut model = Ckat::new(&ctx, config);
        train(&mut model, &ctx, settings)
    }

    /// Train one model and return it, ready for recommendation queries.
    pub fn train_recommender(
        &self,
        kind: ModelKind,
        model_config: &ModelConfig,
        settings: &TrainSettings,
    ) -> Box<dyn Recommender> {
        let ctx = self.ctx();
        let mut model = kind.build(&ctx, model_config);
        train(model.as_mut(), &ctx, settings);
        model.prepare_eval(&ctx);
        model
    }
}

/// Top-K recommendations for `user`, excluding items already queried in
/// training. Returns `(item, score)` pairs, best first.
pub fn recommend_top_k(
    model: &dyn Recommender,
    inter: &Interactions,
    user: Id,
    k: usize,
) -> Vec<(Id, f32)> {
    let scores = model.score_items(user);
    let mut candidates: Vec<(Id, f32)> = scores
        .iter()
        .enumerate()
        .map(|(i, &s)| (i as Id, s))
        .filter(|&(i, _)| !inter.contains_train(user, i))
        .collect();
    candidates.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    candidates.truncate(k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_experiment() -> Experiment {
        Experiment::prepare(&ExperimentConfig {
            facility: FacilityConfig::tiny(),
            seed: 5,
            ..ExperimentConfig::default()
        })
    }

    #[test]
    fn prepare_builds_consistent_world() {
        let exp = tiny_experiment();
        assert_eq!(exp.ckg.n_users, exp.inter.n_users);
        assert_eq!(exp.ckg.n_items, exp.inter.n_items);
        assert!(exp.inter.n_test() > 0, "tiny facility should produce test data");
        let stats = exp.stats();
        assert!(stats.n_triples > 0);
    }

    #[test]
    fn with_mask_keeps_split_but_changes_graph() {
        let exp = tiny_experiment();
        let uig_only = exp.with_mask(SourceMask::uig_only());
        assert_eq!(uig_only.inter.train, exp.inter.train);
        assert_eq!(uig_only.inter.test, exp.inter.test);
        assert!(uig_only.ckg.n_attrs < exp.ckg.n_attrs);
    }

    #[test]
    fn end_to_end_bprmf_beats_untrained() {
        let exp = tiny_experiment();
        let settings = TrainSettings {
            max_epochs: 25,
            eval_every: 5,
            patience: 0,
            k: 10,
            seed: 2,
            verbose: false,
            ..TrainSettings::default()
        };
        let report = exp.run_model(ModelKind::Bprmf, &ModelConfig::fast(), &settings);
        assert!(report.best.recall > 0.0, "recall {}", report.best.recall);
        assert!(report.best.n_users > 0);
    }

    #[test]
    fn recommendations_exclude_train_items() {
        let exp = tiny_experiment();
        let settings = TrainSettings {
            max_epochs: 5,
            eval_every: 5,
            patience: 0,
            k: 10,
            seed: 2,
            verbose: false,
            ..TrainSettings::default()
        };
        let model = exp.train_recommender(ModelKind::Bprmf, &ModelConfig::fast(), &settings);
        let recs = recommend_top_k(model.as_ref(), &exp.inter, 0, 5);
        assert_eq!(recs.len(), 5);
        for &(item, _) in &recs {
            assert!(!exp.inter.contains_train(0, item));
        }
        // Best-first ordering.
        for w in recs.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
