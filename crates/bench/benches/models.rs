//! Model-level benchmarks: one training epoch per model (the cost behind
//! Table II), CKAT epoch cost by propagation depth (the performance side
//! of Table V), attention refresh vs uniform weights (Table IV), and
//! full-ranking evaluation throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use facility_datagen::{FacilityConfig, Trace};
use facility_eval::evaluate;
use facility_kg::SourceMask;
use facility_linalg::seeded_rng;
use facility_models::ckat::{Aggregator, Ckat, CkatConfig};
use facility_models::{ModelConfig, ModelKind, Recommender, TrainContext};

fn small_world() -> (facility_kg::Interactions, facility_kg::Ckg) {
    let mut facility = FacilityConfig::ooi();
    facility.n_users = 200;
    facility.n_items = 150;
    facility.n_organizations = 16;
    let trace = Trace::generate(&facility, 1);
    let mut rng = seeded_rng(1);
    let inter = trace.split_interactions(0.2, &mut rng);
    let mut b = trace.ckg_builder(4);
    b.add_interactions(&inter.train_pairs);
    (inter, b.build(SourceMask::all()))
}

fn cfg() -> ModelConfig {
    ModelConfig { embed_dim: 32, batch_size: 256, keep_prob: 1.0, ..ModelConfig::default() }
}

fn bench_epoch_per_model(c: &mut Criterion) {
    let (inter, ckg) = small_world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut group = c.benchmark_group("train_epoch");
    for kind in ModelKind::table2_order() {
        group.bench_function(kind.label(), |b| {
            let mut model = kind.build(&ctx, &cfg());
            let mut rng = seeded_rng(2);
            b.iter(|| black_box(model.train_epoch(&ctx, &mut rng)));
        });
    }
    group.finish();
}

fn bench_ckat_depth(c: &mut Criterion) {
    let (inter, ckg) = small_world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut group = c.benchmark_group("ckat_epoch_by_depth");
    for depth in 1..=3usize {
        let dims: Vec<usize> = (0..depth).map(|l| 32 >> l).collect();
        let config = CkatConfig {
            layer_dims: dims,
            use_attention: true,
            aggregator: Aggregator::Concat,
            transr_dim: 32,
            margin: 1.0,
            batch_local: true,
            hub_cache: true,
            hub_percentile: 0.99,
            base: cfg(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            let mut model = Ckat::new(&ctx, &config);
            let mut rng = seeded_rng(3);
            b.iter(|| black_box(model.train_epoch(&ctx, &mut rng)));
        });
    }
    group.finish();
}

fn bench_attention_ablation(c: &mut Criterion) {
    let (inter, ckg) = small_world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut group = c.benchmark_group("ckat_epoch_by_attention");
    for (label, att) in [("with_attention", true), ("uniform_weights", false)] {
        let config = CkatConfig {
            layer_dims: vec![32, 16],
            use_attention: att,
            aggregator: Aggregator::Concat,
            transr_dim: 32,
            margin: 1.0,
            batch_local: true,
            hub_cache: true,
            hub_percentile: 0.99,
            base: cfg(),
        };
        group.bench_function(label, |b| {
            let mut model = Ckat::new(&ctx, &config);
            let mut rng = seeded_rng(4);
            b.iter(|| black_box(model.train_epoch(&ctx, &mut rng)));
        });
    }
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let (inter, ckg) = small_world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut group = c.benchmark_group("evaluate_full_ranking");
    for kind in [ModelKind::Bprmf, ModelKind::Ckat, ModelKind::Kgcn] {
        let mut model = kind.build(&ctx, &cfg());
        let mut rng = seeded_rng(5);
        model.train_epoch(&ctx, &mut rng);
        model.prepare_eval(&ctx);
        group.bench_function(kind.label(), |b| {
            b.iter(|| black_box(evaluate(model.as_ref(), &inter, 20)));
        });
    }
    group.finish();
}

criterion_group! {
    name = models;
    config = Criterion::default().sample_size(10);
    targets = bench_epoch_per_model, bench_ckat_depth, bench_attention_ablation, bench_evaluation
}
criterion_main!(models);
