//! Microbenchmarks of the computational kernels every experiment runs on:
//! dense products, the knowledge-aware attention sweep, graph segment ops,
//! negative sampling, top-K selection, and a t-SNE iteration.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use facility_autograd::Tape;
use facility_datagen::{FacilityConfig, Trace};
use facility_kg::sampling::{sample_bpr_batch, sample_kg_batch};
use facility_kg::SourceMask;
use facility_linalg::{init, seeded_rng, Matrix};
use facility_models::transr;
use std::sync::Arc;

fn ooi_world() -> (facility_kg::Interactions, facility_kg::Ckg) {
    let trace = Trace::generate(&FacilityConfig::ooi(), 1);
    let mut rng = seeded_rng(1);
    let inter = trace.split_interactions(0.2, &mut rng);
    let mut b = trace.ckg_builder(4);
    b.add_interactions(&inter.train_pairs);
    (inter, b.build(SourceMask::all()))
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/matmul");
    for &n in &[64usize, 256, 1024] {
        let mut rng = seeded_rng(2);
        let a = init::uniform(n, 64, -1.0, 1.0, &mut rng);
        let b = init::uniform(64, 64, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    let (_, ckg) = ooi_world();
    let d = 32;
    let mut rng = seeded_rng(3);
    let ent = init::xavier_uniform(ckg.n_entities(), d, &mut rng);
    let rel = init::xavier_uniform(ckg.n_relations_with_inverse(), d, &mut rng);
    let proj = init::xavier_uniform(ckg.n_relations_with_inverse() * d, d, &mut rng);
    let mut group = c.benchmark_group("transr");
    group.bench_function("attention_scores/ooi_ckg", |b| {
        b.iter(|| black_box(transr::attention_scores(&ckg, &ent, &rel, &proj)));
    });
    group.bench_function("uniform_scores/ooi_ckg", |b| {
        b.iter(|| black_box(transr::uniform_scores(&ckg)));
    });
    group.finish();
}

fn bench_segment_ops(c: &mut Criterion) {
    let (_, ckg) = ooi_world();
    let d = 32;
    let mut rng = seeded_rng(4);
    let ent = init::xavier_uniform(ckg.n_entities(), d, &mut rng);
    let tails: Vec<usize> = ckg.tails.iter().map(|&t| t as usize).collect();
    let heads: Arc<Vec<usize>> = Arc::new(ckg.heads.iter().map(|&h| h as usize).collect());
    let att = transr::uniform_scores(&ckg);
    let n_ent = ckg.n_entities();

    c.bench_function("tape/propagation_layer_fwd_bwd", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let e = t.leaf(ent.clone());
            let at = t.constant(Matrix::from_vec(att.len(), 1, att.clone()));
            let et = t.gather_rows(e, &tails);
            let msg = t.mul_broadcast_col(et, at);
            let agg = t.segment_sum(msg, Arc::clone(&heads), n_ent);
            let loss = t.frobenius_sq(agg);
            t.backward(loss);
            black_box(t.grad(e).is_some())
        });
    });
}

fn bench_sampling(c: &mut Criterion) {
    let (inter, ckg) = ooi_world();
    let mut group = c.benchmark_group("sampling");
    group.bench_function("bpr_batch_512", |b| {
        let mut rng = seeded_rng(5);
        b.iter(|| black_box(sample_bpr_batch(&inter, 512, &mut rng)));
    });
    group.bench_function("kg_batch_512", |b| {
        let mut rng = seeded_rng(6);
        b.iter(|| black_box(sample_kg_batch(&ckg, 512, &mut rng)));
    });
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let (inter, _) = ooi_world();
    let n_items = inter.n_items;
    let mut rng = seeded_rng(7);
    let scores = init::uniform(1, n_items, -1.0, 1.0, &mut rng).into_vec();
    c.bench_function("eval/topk_for_user", |b| {
        b.iter(|| {
            black_box(facility_eval::metrics::topk_for_user(
                &scores,
                &inter.train[0],
                &[1, 5, 9],
                20,
            ))
        });
    });
}

fn bench_tsne(c: &mut Criterion) {
    let mut rng = seeded_rng(8);
    let x = init::normal(200, 16, 0.0, 1.0, &mut rng);
    c.bench_function("tsne/200pts_50iters", |b| {
        b.iter(|| {
            black_box(facility_tsne::run(
                &x,
                &facility_tsne::TsneConfig { n_iter: 50, ..Default::default() },
            ))
        });
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_attention, bench_segment_ops, bench_sampling, bench_topk, bench_tsne
}
criterion_main!(kernels);
