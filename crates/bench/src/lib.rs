#![warn(missing_docs)]

//! # facility-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`table1` … `table5`, `fig3` … `fig5`) plus Criterion microbenchmarks
//! (`cargo bench`).
//!
//! Every binary accepts:
//!
//! * `--fast` — smaller embeddings, fewer epochs, scaled-down facilities;
//!   finishes in seconds and preserves the qualitative shape.
//! * `--paper` — the paper's hyperparameters (embedding 64, layer dims
//!   `[64,32,16]`, batch 512) on the full-scale synthetic facilities.
//!   This is the profile used for the numbers in `EXPERIMENTS.md`.
//! * `--huge` — a single ~106k-entity stress facility for profiling the
//!   sparse/lazy training path (see `FacilityConfig::huge`); not a paper
//!   reproduction profile.
//! * `--seed N` — change the simulation/training seed.
//! * `--epochs N` — override the epoch count of binaries that honor it
//!   (currently `epoch_profile`).
//! * `--replicas N|auto` — train on the deterministic data-parallel
//!   macro-step path with up to `N` worker threads (`auto` = available
//!   cores capped at the macro-step width); omit for the legacy serial
//!   per-batch path. `epoch_profile` treats this as a sweep bound.
//!
//! The default profile sits between the two: full-scale facilities with
//! medium embedding width, tuned so the whole table suite regenerates in
//! minutes on a laptop-class CPU.

use facility_datagen::FacilityConfig;
use facility_eval::TrainSettings;
use facility_models::ckat::{Aggregator, CkatConfig};
use facility_models::ModelConfig;

/// Parsed command-line options shared by every harness binary.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Profile selector.
    pub profile: Profile,
    /// Simulation/training seed.
    pub seed: u64,
    /// Top-K cutoff.
    pub k: usize,
    /// Epoch-count override for binaries that honor it (`epoch_profile`);
    /// `None` keeps each binary's default.
    pub epochs: Option<usize>,
    /// Replica-count override: `Some(r)` trains on the deterministic
    /// macro-step path with up to `r` worker threads (binaries that honor
    /// it sweep the counts below `r` too); `None` keeps the legacy
    /// per-batch path. `--replicas auto` resolves to available cores
    /// capped at the macro-step width.
    pub replicas: Option<usize>,
}

/// Harness profiles (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Seconds-scale smoke profile.
    Fast,
    /// Minutes-scale default.
    Default,
    /// The paper's hyperparameters.
    Paper,
    /// ~106k-entity stress world for the sparse training path.
    Huge,
}

impl HarnessOpts {
    /// Parse `std::env::args`; unknown flags abort with usage help.
    pub fn from_args() -> Self {
        let mut opts =
            Self { profile: Profile::Default, seed: 42, k: 20, epochs: None, replicas: None };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--fast" => opts.profile = Profile::Fast,
                "--paper" => opts.profile = Profile::Paper,
                "--huge" => opts.profile = Profile::Huge,
                "--epochs" => {
                    opts.epochs = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--epochs needs an integer")),
                    );
                }
                "--replicas" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--replicas needs an integer >= 1, or `auto`"));
                    opts.replicas = Some(if v == "auto" {
                        facility_models::replica::default_replicas()
                    } else {
                        v.parse()
                            .ok()
                            .filter(|&r| r >= 1)
                            .unwrap_or_else(|| usage("--replicas needs an integer >= 1, or `auto`"))
                    });
                }
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--k" => {
                    opts.k = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--k needs an integer"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        opts
    }

    /// The two facilities of the paper, scaled per profile. The `Huge`
    /// profile is the exception: one oversized synthetic world, because it
    /// exists to stress the training path, not to reproduce Table I.
    pub fn facilities(&self) -> Vec<(&'static str, FacilityConfig)> {
        match self.profile {
            Profile::Fast => vec![
                ("OOI-like (scaled)", scale(FacilityConfig::ooi(), 4)),
                ("GAGE-like (scaled)", scale(FacilityConfig::gage(), 8)),
            ],
            Profile::Huge => vec![("huge-synthetic", FacilityConfig::huge())],
            _ => vec![("OOI-like", FacilityConfig::ooi()), ("GAGE-like", FacilityConfig::gage())],
        }
    }

    /// Shared model hyperparameters for this profile.
    pub fn model_config(&self) -> ModelConfig {
        match self.profile {
            Profile::Fast => ModelConfig {
                embed_dim: 16,
                batch_size: 256,
                lr: 0.01,
                l2: 1e-5,
                keep_prob: 1.0,
                seed: self.seed,
                replicas: self.replicas.unwrap_or(0),
            },
            Profile::Default => ModelConfig {
                embed_dim: 32,
                batch_size: 512,
                lr: 0.01,
                l2: 1e-5,
                keep_prob: 0.9,
                seed: self.seed,
                replicas: self.replicas.unwrap_or(0),
            },
            Profile::Paper => ModelConfig {
                embed_dim: 64,
                batch_size: 512,
                lr: 0.01,
                l2: 1e-5,
                keep_prob: 0.9,
                seed: self.seed,
                replicas: self.replicas.unwrap_or(0),
            },
            // Default-width embeddings over a 100k+-row entity matrix;
            // batches are bigger so an epoch is fewer, heavier steps.
            Profile::Huge => ModelConfig {
                embed_dim: 32,
                batch_size: 1024,
                lr: 0.01,
                l2: 1e-5,
                keep_prob: 0.9,
                seed: self.seed,
                replicas: self.replicas.unwrap_or(0),
            },
        }
    }

    /// CKAT configuration for this profile (paper defaults: depth 3,
    /// attention on, concat aggregator).
    pub fn ckat_config(&self) -> CkatConfig {
        let mut base = self.model_config();
        base.keep_prob = base.keep_prob.min(0.8); // CKAT's grid-searched dropout
        let d = base.embed_dim;
        CkatConfig {
            layer_dims: vec![d, d / 2, d / 4],
            use_attention: true,
            aggregator: Aggregator::Concat,
            transr_dim: d,
            margin: 1.0,
            batch_local: true,
            hub_cache: true,
            hub_percentile: 0.99,
            base,
        }
    }

    /// Trainer settings for this profile.
    pub fn train_settings(&self) -> TrainSettings {
        match self.profile {
            Profile::Fast => TrainSettings {
                max_epochs: 10,
                eval_every: 5,
                patience: 0,
                k: self.k,
                seed: self.seed,
                verbose: false,
                ..TrainSettings::default()
            },
            Profile::Default => TrainSettings {
                max_epochs: 80,
                eval_every: 5,
                patience: 4,
                k: self.k,
                seed: self.seed,
                verbose: true,
                ..TrainSettings::default()
            },
            Profile::Paper => TrainSettings {
                max_epochs: 120,
                eval_every: 5,
                patience: 6,
                k: self.k,
                seed: self.seed,
                verbose: true,
                ..TrainSettings::default()
            },
            // The stress world is for profiling, not convergence: a couple
            // of epochs, evaluation only at the end.
            Profile::Huge => TrainSettings {
                max_epochs: 2,
                eval_every: 2,
                patience: 0,
                k: self.k,
                seed: self.seed,
                verbose: true,
                ..TrainSettings::default()
            },
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <bin> [--fast | --paper | --huge] [--seed N] [--k N] [--epochs N] [--replicas N|auto]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 })
}

/// Per-model learning rate from the grid search (the paper tunes lr per
/// model over {0.05, 0.01, 0.005, 0.001}; these are the winners of our
/// sweep on the synthetic facilities).
pub fn tuned_lr(kind: facility_models::ModelKind) -> f32 {
    use facility_models::ModelKind::*;
    match kind {
        RippleNet | Kgcn | Ckat => 0.01,
        Bprmf | Fm | Nfm | Cke | Cfkg => 0.005,
    }
}

/// Per-model dropout keep-probability from the grid search (the paper
/// tunes the drop ratio over {0.0 … 0.8} for NFM and CKAT).
pub fn tuned_keep_prob(kind: facility_models::ModelKind) -> f32 {
    use facility_models::ModelKind::*;
    match kind {
        Ckat => 0.8,
        _ => 0.9,
    }
}

/// Scale a facility config down by `factor` for smoke runs.
fn scale(mut c: FacilityConfig, factor: usize) -> FacilityConfig {
    c.n_items = (c.n_items / factor).max(30);
    c.n_users = (c.n_users / factor).max(40);
    c.n_sites = (c.n_sites / factor).max(c.n_regions);
    c.n_cities = (c.n_cities / factor).max(4);
    c.n_organizations = (c.n_organizations / factor).max(3);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_configs_validate() {
        for f in [4, 8, 100] {
            scale(FacilityConfig::ooi(), f).validate();
            scale(FacilityConfig::gage(), f).validate();
        }
    }

    #[test]
    fn profiles_produce_consistent_configs() {
        for profile in [Profile::Fast, Profile::Default, Profile::Paper] {
            let opts = HarnessOpts { profile, seed: 1, k: 20, epochs: None, replicas: None };
            let mc = opts.model_config();
            let cc = opts.ckat_config();
            assert_eq!(cc.base.embed_dim, mc.embed_dim);
            assert_eq!(cc.depth(), 3);
            assert_eq!(opts.facilities().len(), 2);
            assert!(opts.train_settings().max_epochs > 0);
        }
    }

    #[test]
    fn huge_profile_is_single_oversized_world() {
        let opts =
            HarnessOpts { profile: Profile::Huge, seed: 1, k: 20, epochs: None, replicas: None };
        let facilities = opts.facilities();
        assert_eq!(facilities.len(), 1);
        let (_, config) = &facilities[0];
        config.validate();
        assert!(config.n_users + config.n_items > 100_000);
        assert_eq!(opts.ckat_config().base.embed_dim, opts.model_config().embed_dim);
        assert!(opts.train_settings().max_epochs > 0);
    }
}
