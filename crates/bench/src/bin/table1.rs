//! Regenerate **Table I** — statistics of the OOI and GAGE collaborative
//! knowledge graphs — from the synthetic facilities.

use facility_bench::HarnessOpts;
use facility_ckat::report::format_table;
use facility_ckat::{Experiment, ExperimentConfig};

fn main() {
    let opts = HarnessOpts::from_args();
    // Paper values for side-by-side comparison.
    let paper = [("OOI", 1342, 8, 5554, 6.0), ("GAGE", 4754, 7, 20314, 10.0)];

    let mut rows = Vec::new();
    for (i, (name, facility)) in opts.facilities().into_iter().enumerate() {
        let exp = Experiment::prepare(&ExperimentConfig {
            facility,
            seed: opts.seed,
            ..ExperimentConfig::default()
        });
        let s = exp.stats();
        let (pname, pe, pr, pt, pl) = paper[i.min(1)];
        rows.push(vec![
            name.to_string(),
            s.n_entities.to_string(),
            s.n_relationships.to_string(),
            s.n_triples.to_string(),
            format!("{:.0}", s.link_avg),
            format!("{pname}: {pe} / {pr} / {pt} / {pl:.0}"),
        ]);
    }
    println!("Table I — CKG statistics (measured vs paper)\n");
    println!(
        "{}",
        format_table(
            &[
                "facility",
                "# entities",
                "# relationships",
                "# KG triplets",
                "link-avg",
                "paper (ent/rel/triples/link-avg)"
            ],
            &rows
        )
    );
}
