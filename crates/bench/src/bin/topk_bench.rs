//! Single-query vs batched top-K retrieval benchmark.
//!
//! Pits the production per-query path (a `kernels::dot` scan over the
//! catalog followed by `facility_eval::rank_top_k`) against the blocked
//! engine (`facility_linalg::retrieval::BatchTopK::rank_block`, which
//! tiles the catalog so each item tile is scored against a whole query
//! block while cache-resident, then streams scores through bounded
//! selectors with threshold pruning).
//!
//! Before timing, every query's batched ranking is compared against the
//! per-query reference **item-and-bit**: same ids, same order, same
//! score bits. Exits nonzero on any divergence, so the CI bench-smoke
//! job doubles as an end-to-end batched-≡-sequential check under
//! release-opt codegen (the differential test suites cover the test
//! profile; this binary covers `--release`).
//!
//! Writes throughput and [`RetrievalStats`] pruning counters to
//! `BENCH_topk.json`.
//!
//! `--fast` shrinks the problem for CI smoke runs; `--huge` scales the
//! catalog past cache so the blocked scan's item-tile reuse shows up
//! (the ≥3x multi-query acceptance number is measured here).

use facility_eval::rank_top_k;
use facility_kg::Id;
use facility_linalg::kernels;
use facility_linalg::retrieval::BatchTopK;
use std::fmt::Write as _;
use std::time::Instant;

/// Queries scored per block — matches `facility-eval`'s blocked path.
const QUERY_BLOCK: usize = 8;

/// Deterministic splitmix-style value generator — no RNG state to seed,
/// so every run sees identical bits.
fn val(i: usize, salt: u64) -> f32 {
    let mut z = (i as u64).wrapping_add(salt).wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
}

fn vec_of(n: usize, salt: u64) -> Vec<f32> {
    (0..n).map(|i| val(i, salt)).collect()
}

struct Workload {
    mode: &'static str,
    n_items: usize,
    d: usize,
    n_queries: usize,
    k: usize,
    reps: u32,
}

fn workload() -> Workload {
    let fast = std::env::args().any(|a| a == "--fast");
    let huge = std::env::args().any(|a| a == "--huge");
    if fast {
        Workload { mode: "fast", n_items: 4096, d: 32, n_queries: 64, k: 100, reps: 2 }
    } else if huge {
        // 128k x 64 items = 32 MiB of catalog: the per-query scan is
        // DRAM-bound, the blocked scan re-uses each tile across the
        // whole query block.
        Workload { mode: "huge", n_items: 131_072, d: 64, n_queries: 512, k: 100, reps: 3 }
    } else {
        Workload { mode: "default", n_items: 32_768, d: 64, n_queries: 256, k: 100, reps: 3 }
    }
}

/// Production per-query path: lane-folded dot scan into a reused score
/// buffer, then the reference selector.
fn rank_single(
    queries: &[f32],
    d: usize,
    items: &[f32],
    n_items: usize,
    excludes: &[Vec<Id>],
    k: usize,
) -> Vec<Vec<(Id, f32)>> {
    let mut scores = vec![0.0f32; n_items];
    excludes
        .iter()
        .enumerate()
        .map(|(q, ex)| {
            let query = &queries[q * d..(q + 1) * d];
            for (j, s) in scores.iter_mut().enumerate() {
                *s = kernels::dot(query, &items[j * d..(j + 1) * d]);
            }
            rank_top_k(&scores, ex, k)
        })
        .collect()
}

/// Blocked path: `QUERY_BLOCK` queries per tiled scan.
fn rank_batched(
    engine: &mut BatchTopK,
    queries: &[f32],
    d: usize,
    items: &[f32],
    n_items: usize,
    excludes: &[Vec<Id>],
    k: usize,
) -> Vec<Vec<(Id, f32)>> {
    let mut out = Vec::with_capacity(excludes.len());
    for (block_idx, ex_block) in excludes.chunks(QUERY_BLOCK).enumerate() {
        let q0 = block_idx * QUERY_BLOCK;
        let block_queries = &queries[q0 * d..(q0 + ex_block.len()) * d];
        let ex_refs: Vec<&[Id]> = ex_block.iter().map(Vec::as_slice).collect();
        out.extend(engine.rank_block(block_queries, d, items, n_items, &ex_refs, k));
    }
    out
}

fn main() {
    let w = workload();
    println!(
        "topk_bench [{}]: {} queries x {} items x d={} (k={}, block={QUERY_BLOCK})",
        w.mode, w.n_queries, w.n_items, w.d, w.k
    );

    let queries = vec_of(w.n_queries * w.d, 101);
    let items = vec_of(w.n_items * w.d, 202);
    // Small sorted per-query masks, like a user's train items.
    let excludes: Vec<Vec<Id>> = (0..w.n_queries)
        .map(|q| {
            let mut ex: Vec<Id> =
                (0..16).map(|i| ((q * 2654435761 + i * 40503) % w.n_items) as Id).collect();
            ex.sort_unstable();
            ex.dedup();
            ex
        })
        .collect();

    // --- Bitwise gate: batched ≡ per-query, item and bit ---------------
    let want = rank_single(&queries, w.d, &items, w.n_items, &excludes, w.k);
    let mut engine = BatchTopK::new();
    let got = rank_batched(&mut engine, &queries, w.d, &items, w.n_items, &excludes, w.k);
    let gate_stats = engine.take_stats();
    let mut mismatches = 0usize;
    for (q, (g, r)) in got.iter().zip(&want).enumerate() {
        let same = g.len() == r.len()
            && g.iter().zip(r).all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());
        if !same {
            mismatches += 1;
            eprintln!("BITWISE MISMATCH: query {q} batched ranking differs from rank_top_k");
        }
    }
    let bitwise_equal = mismatches == 0;

    // --- Throughput: best-of-reps full sweeps --------------------------
    let mut single_ns = f64::INFINITY;
    for _ in 0..w.reps {
        let t0 = Instant::now();
        std::hint::black_box(rank_single(&queries, w.d, &items, w.n_items, &excludes, w.k));
        single_ns = single_ns.min(t0.elapsed().as_nanos() as f64);
    }
    let mut batched_ns = f64::INFINITY;
    for _ in 0..w.reps {
        let t0 = Instant::now();
        std::hint::black_box(rank_batched(
            &mut engine,
            &queries,
            w.d,
            &items,
            w.n_items,
            &excludes,
            w.k,
        ));
        batched_ns = batched_ns.min(t0.elapsed().as_nanos() as f64);
    }
    let nq = w.n_queries as f64;
    let speedup = single_ns / batched_ns;
    let single_qps = nq / (single_ns / 1e9);
    let batched_qps = nq / (batched_ns / 1e9);
    let offered = gate_stats.offers_admitted + gate_stats.offers_pruned;
    let pruned_frac =
        if offered > 0 { gate_stats.offers_pruned as f64 / offered as f64 } else { 0.0 };

    println!("single  {:>10.0} ns/query  ({:>9.0} q/s)", single_ns / nq, single_qps);
    println!(
        "batched {:>10.0} ns/query  ({:>9.0} q/s)  {:.2}x  pruned {:.1}% of offers",
        batched_ns / nq,
        batched_qps,
        speedup,
        pruned_frac * 100.0,
    );

    let mut json = String::from("{\n  \"bench\": \"topk\",\n");
    let _ = writeln!(json, "  \"mode\": \"{}\",", w.mode);
    let _ = writeln!(json, "  \"n_items\": {},", w.n_items);
    let _ = writeln!(json, "  \"d\": {},", w.d);
    let _ = writeln!(json, "  \"n_queries\": {},", w.n_queries);
    let _ = writeln!(json, "  \"k\": {},", w.k);
    let _ = writeln!(json, "  \"query_block\": {QUERY_BLOCK},");
    let _ = writeln!(json, "  \"reps\": {},", w.reps);
    let _ = writeln!(json, "  \"bitwise_equal\": {bitwise_equal},");
    let _ = writeln!(json, "  \"single_ns_per_query\": {:.1},", single_ns / nq);
    let _ = writeln!(json, "  \"batched_ns_per_query\": {:.1},", batched_ns / nq);
    let _ = writeln!(json, "  \"multi_query_speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"single_qps\": {single_qps:.1},");
    let _ = writeln!(json, "  \"batched_qps\": {batched_qps:.1},");
    json.push_str("  \"retrieval_stats\": {\n");
    let _ = writeln!(json, "    \"queries\": {},", gate_stats.queries);
    let _ = writeln!(json, "    \"tiles\": {},", gate_stats.tiles);
    let _ = writeln!(json, "    \"items_scored\": {},", gate_stats.items_scored);
    let _ = writeln!(json, "    \"offers_admitted\": {},", gate_stats.offers_admitted);
    let _ = writeln!(json, "    \"offers_pruned\": {},", gate_stats.offers_pruned);
    let _ = writeln!(json, "    \"pruned_frac\": {pruned_frac:.4}");
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_topk.json", &json).expect("write BENCH_topk.json");
    println!("wrote BENCH_topk.json");

    if !bitwise_equal {
        eprintln!("{mismatches} query ranking(s) diverged between batched and per-query paths");
        std::process::exit(1);
    }
}
