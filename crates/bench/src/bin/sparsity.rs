//! Sparsity-band analysis (an extension beyond the paper's tables, in the
//! spirit of KGAT's sparsity study): how much does the knowledge network
//! help users with little interaction history? Test users are bucketed by
//! training-set size and recall@K is reported per bucket for BPRMF
//! (knowledge-free) vs CKAT.
//!
//! The cold-start story behind the whole paper predicts the largest CKAT
//! advantage in the sparsest bucket.

use facility_bench::HarnessOpts;
use facility_ckat::report::{format_table, metric};
use facility_ckat::{Experiment, ExperimentConfig};
use facility_eval::metrics::{topk_for_user, EvalResult, TopKMetrics};
use facility_models::{ModelKind, Recommender};

fn bucket_recall(
    model: &dyn Recommender,
    inter: &facility_kg::Interactions,
    buckets: &[Vec<u32>],
    k: usize,
) -> Vec<EvalResult> {
    buckets
        .iter()
        .map(|users| {
            let per_user: Vec<TopKMetrics> = users
                .iter()
                .filter_map(|&u| {
                    let scores = model.score_items(u);
                    topk_for_user(&scores, &inter.train[u as usize], &inter.test[u as usize], k)
                })
                .collect();
            EvalResult::aggregate(&per_user, k)
        })
        .collect()
}

fn main() {
    let opts = HarnessOpts::from_args();
    let model_cfg = opts.model_config();
    let settings = opts.train_settings();

    for (name, facility) in opts.facilities() {
        eprintln!("== {name} ==");
        let exp = Experiment::prepare(&ExperimentConfig {
            facility,
            seed: opts.seed,
            ..ExperimentConfig::default()
        });
        // Quartile buckets by training activity.
        let mut users = exp.inter.test_users();
        users.sort_by_key(|&u| exp.inter.train[u as usize].len());
        let q = users.len().div_ceil(4);
        let buckets: Vec<Vec<u32>> = users.chunks(q.max(1)).map(|c| c.to_vec()).collect();
        let bounds: Vec<String> = buckets
            .iter()
            .map(|b| {
                let lo = exp.inter.train[b[0] as usize].len();
                let hi = exp.inter.train[*b.last().unwrap() as usize].len();
                format!("{lo}-{hi} items")
            })
            .collect();

        let mut results = Vec::new();
        for kind in [ModelKind::Bprmf, ModelKind::Ckat] {
            let mut cfg = model_cfg.clone();
            cfg.lr = facility_bench::tuned_lr(kind);
            let model = exp.train_recommender(kind, &cfg, &settings);
            results.push(bucket_recall(model.as_ref(), &exp.inter, &buckets, opts.k));
        }

        let mut rows = Vec::new();
        for (b, bound) in bounds.iter().enumerate() {
            let bpr = results[0][b].recall;
            let ckat = results[1][b].recall;
            rows.push(vec![
                format!("Q{} ({bound})", b + 1),
                results[0][b].n_users.to_string(),
                metric(bpr),
                metric(ckat),
                format!("{:+.1}%", if bpr > 0.0 { (ckat - bpr) / bpr * 100.0 } else { 0.0 }),
            ]);
        }
        println!("\nSparsity bands on {name} (recall@{})\n", opts.k);
        println!(
            "{}",
            format_table(&["activity band", "users", "BPRMF", "CKAT", "CKAT lift"], &rows)
        );
    }
}
