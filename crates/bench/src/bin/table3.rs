//! Regenerate **Table III** — the knowledge-source ablation: CKAT trained
//! on different CKG compositions (UIG plus combinations of LOC, DKG, UUG,
//! and the MD noise source).

use facility_bench::HarnessOpts;
use facility_ckat::report::{format_table, metric};
use facility_ckat::{Experiment, ExperimentConfig};
use facility_kg::SourceMask;

fn main() {
    let opts = HarnessOpts::from_args();
    let ckat_cfg = opts.ckat_config();
    let settings = opts.train_settings();

    let masks: Vec<(SourceMask, [f64; 4])> = vec![
        // (mask, paper values: ooi recall, ooi ndcg, gage recall, gage ndcg)
        (
            SourceMask { uug: false, loc: true, dkg: false, md: false },
            [0.2675, 0.2322, 0.3848, 0.3191],
        ),
        (
            SourceMask { uug: false, loc: false, dkg: true, md: false },
            [0.2844, 0.2424, 0.3643, 0.3148],
        ),
        (
            SourceMask { uug: true, loc: false, dkg: false, md: false },
            [0.2756, 0.2364, 0.3543, 0.3048],
        ),
        (
            SourceMask { uug: false, loc: true, dkg: true, md: false },
            [0.3074, 0.2527, 0.3943, 0.3148],
        ),
        (SourceMask::all(), [0.3217, 0.2561, 0.4062, 0.3306]),
        (SourceMask::all_with_noise(), [0.3197, 0.2511, 0.4011, 0.3276]),
    ];

    let mut rows = Vec::new();
    let facilities = opts.facilities();
    let mut measured: Vec<Vec<(f64, f64)>> = vec![Vec::new(); masks.len()];
    for (fi, (name, facility)) in facilities.iter().enumerate() {
        eprintln!("== preparing {name} ==");
        let base = Experiment::prepare(&ExperimentConfig {
            facility: facility.clone(),
            seed: opts.seed,
            ..ExperimentConfig::default()
        });
        for (mi, (mask, _)) in masks.iter().enumerate() {
            let exp = base.with_mask(*mask);
            let report = exp.run_ckat(&ckat_cfg, &settings);
            eprintln!(
                "{name}/{}: recall {:.4} ndcg {:.4}",
                mask.label(),
                report.best.recall,
                report.best.ndcg
            );
            measured[mi].push((report.best.recall, report.best.ndcg));
            let _ = fi;
        }
    }

    for (mi, (mask, paper)) in masks.iter().enumerate() {
        rows.push(vec![
            mask.label(),
            metric(measured[mi][0].0),
            metric(measured[mi][0].1),
            metric(measured[mi][1].0),
            metric(measured[mi][1].1),
            format!("{:.4}/{:.4}, {:.4}/{:.4}", paper[0], paper[1], paper[2], paper[3]),
        ]);
    }

    println!("\nTable III — knowledge-source combinations (measured vs paper)\n");
    println!(
        "{}",
        format_table(
            &[
                "Knowledge",
                "OOI recall@20",
                "OOI ndcg@20",
                "GAGE recall@20",
                "GAGE ndcg@20",
                "paper (OOI r/n, GAGE r/n)"
            ],
            &rows
        )
    );
}
