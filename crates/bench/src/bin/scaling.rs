//! Parallel-scaling study — the paper's conclusion names "the
//! parallelization of the CKAT model" as future work; this binary measures
//! what rayon data-parallelism delivers in this implementation.
//!
//! Three phases are timed at 1, 2, 4, … threads up to the machine's
//! cores: the knowledge-aware attention refresh over all CKG edges, one
//! CKAT training epoch (parallel dense kernels), and full-ranking
//! evaluation (parallel over users).

use facility_bench::HarnessOpts;
use facility_ckat::report::format_table;
use facility_ckat::{Experiment, ExperimentConfig};
use facility_eval::evaluate;
use facility_linalg::seeded_rng;
use facility_models::transr;
use facility_models::ModelKind;
use std::time::Instant;

fn main() {
    let opts = HarnessOpts::from_args();
    let (name, facility) = opts.facilities().remove(0);
    eprintln!("== scaling study on {name} ==");
    let exp = Experiment::prepare(&ExperimentConfig {
        facility,
        seed: opts.seed,
        ..ExperimentConfig::default()
    });
    let ctx = exp.ctx();
    let cfg = opts.model_config();

    // Train a model once (thread-count independent setup).
    let mut model = ModelKind::Ckat.build(&ctx, &cfg);
    let mut rng = seeded_rng(opts.seed);
    model.train_epoch(&ctx, &mut rng);
    model.prepare_eval(&ctx);

    let d = cfg.embed_dim;
    let mut rng2 = seeded_rng(1);
    let ent = facility_linalg::init::xavier_uniform(exp.ckg.n_entities(), d, &mut rng2);
    let rel =
        facility_linalg::init::xavier_uniform(exp.ckg.n_relations_with_inverse(), d, &mut rng2);
    let proj =
        facility_linalg::init::xavier_uniform(exp.ckg.n_relations_with_inverse() * d, d, &mut rng2);

    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut rows = Vec::new();
    let mut threads = 1;
    let mut base: Option<(f64, f64, f64)> = None;
    while threads <= max_threads {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool");
        let (t_att, t_epoch, t_eval) = pool.install(|| {
            let t0 = Instant::now();
            for _ in 0..3 {
                let _ = transr::attention_scores(&exp.ckg, &ent, &rel, &proj);
            }
            let t_att = t0.elapsed().as_secs_f64() / 3.0;

            let t0 = Instant::now();
            let mut m = ModelKind::Ckat.build(&ctx, &cfg);
            let mut r = seeded_rng(2);
            m.train_epoch(&ctx, &mut r);
            let t_epoch = t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            for _ in 0..3 {
                let _ = evaluate(model.as_ref(), &exp.inter, opts.k);
            }
            let t_eval = t0.elapsed().as_secs_f64() / 3.0;
            (t_att, t_epoch, t_eval)
        });
        let b = *base.get_or_insert((t_att, t_epoch, t_eval));
        rows.push(vec![
            threads.to_string(),
            format!("{:.1} ms ({:.2}x)", t_att * 1e3, b.0 / t_att),
            format!("{:.1} ms ({:.2}x)", t_epoch * 1e3, b.1 / t_epoch),
            format!("{:.1} ms ({:.2}x)", t_eval * 1e3, b.2 / t_eval),
        ]);
        threads *= 2;
    }
    println!("\nParallel scaling on {name} (speedup vs 1 thread)\n");
    println!(
        "{}",
        format_table(&["threads", "attention refresh", "CKAT epoch", "full-ranking eval"], &rows)
    );
}
