//! Regenerate **Table IV** — the attention-mechanism and aggregator
//! ablation: CKAT with/without knowledge-aware attention and with the
//! concat vs sum aggregator.

use facility_bench::HarnessOpts;
use facility_ckat::report::{format_table, metric};
use facility_ckat::{Experiment, ExperimentConfig};
use facility_models::ckat::Aggregator;

fn main() {
    let opts = HarnessOpts::from_args();
    let settings = opts.train_settings();

    let variants: Vec<(&str, bool, Aggregator, [f64; 4])> = vec![
        ("w/ Att + agg_concat", true, Aggregator::Concat, [0.3217, 0.2561, 0.4062, 0.3306]),
        ("w/ Att + agg_sum", true, Aggregator::Sum, [0.3120, 0.2409, 0.3894, 0.3123]),
        ("w/o Att + agg_concat", false, Aggregator::Concat, [0.2994, 0.2331, 0.3755, 0.3147]),
    ];

    let mut measured: Vec<Vec<(f64, f64)>> = vec![Vec::new(); variants.len()];
    for (name, facility) in opts.facilities() {
        eprintln!("== preparing {name} ==");
        let exp = Experiment::prepare(&ExperimentConfig {
            facility,
            seed: opts.seed,
            ..ExperimentConfig::default()
        });
        for (vi, (label, att, agg, _)) in variants.iter().enumerate() {
            let mut cfg = opts.ckat_config();
            cfg.use_attention = *att;
            cfg.aggregator = *agg;
            let report = exp.run_ckat(&cfg, &settings);
            eprintln!(
                "{name}/{label}: recall {:.4} ndcg {:.4}",
                report.best.recall, report.best.ndcg
            );
            measured[vi].push((report.best.recall, report.best.ndcg));
        }
    }

    let rows: Vec<Vec<String>> = variants
        .iter()
        .enumerate()
        .map(|(vi, (label, _, _, paper))| {
            vec![
                label.to_string(),
                metric(measured[vi][0].0),
                metric(measured[vi][0].1),
                metric(measured[vi][1].0),
                metric(measured[vi][1].1),
                format!("{:.4}/{:.4}, {:.4}/{:.4}", paper[0], paper[1], paper[2], paper[3]),
            ]
        })
        .collect();

    println!("\nTable IV — attention & aggregator ablation (measured vs paper)\n");
    println!(
        "{}",
        format_table(
            &[
                "Variant",
                "OOI recall@20",
                "OOI ndcg@20",
                "GAGE recall@20",
                "GAGE ndcg@20",
                "paper (OOI r/n, GAGE r/n)"
            ],
            &rows
        )
    );
}
