//! Regenerate **Table II** — overall performance comparison of CKAT
//! against the seven baselines on both facilities (recall@20 / ndcg@20),
//! including the "% Impro." row over the best baseline.

use facility_bench::HarnessOpts;
use facility_ckat::report::{format_table, improvement_pct, metric};
use facility_ckat::{Experiment, ExperimentConfig};
use facility_models::ModelKind;
use std::time::Instant;

fn main() {
    let opts = HarnessOpts::from_args();
    let model_cfg = opts.model_config();
    let settings = opts.train_settings();

    // paper values: (model, ooi recall, ooi ndcg, gage recall, gage ndcg)
    let paper = [
        ("BPRMF", 0.1935, 0.1693, 0.2742, 0.2115),
        ("FM", 0.2353, 0.2228, 0.3174, 0.2356),
        ("NFM", 0.2339, 0.2211, 0.3289, 0.2471),
        ("CKE", 0.2102, 0.2197, 0.2675, 0.2106),
        ("CFKG", 0.2283, 0.2241, 0.2572, 0.2096),
        ("RippleNet", 0.2833, 0.2394, 0.3584, 0.2981),
        ("KGCN", 0.3020, 0.2414, 0.3767, 0.3106),
        ("CKAT", 0.3217, 0.2561, 0.4062, 0.3306),
    ];

    let mut results: Vec<Vec<(f64, f64)>> = Vec::new(); // [facility][model] = (recall, ndcg)
    let facilities = opts.facilities();
    for (name, facility) in &facilities {
        eprintln!("== preparing {name} ==");
        let exp = Experiment::prepare(&ExperimentConfig {
            facility: facility.clone(),
            seed: opts.seed,
            ..ExperimentConfig::default()
        });
        eprintln!("{}", exp.stats());
        let mut per_model = Vec::new();
        for kind in ModelKind::table2_order() {
            let start = Instant::now();
            let mut cfg = model_cfg.clone();
            cfg.lr = facility_bench::tuned_lr(kind);
            cfg.keep_prob = facility_bench::tuned_keep_prob(kind);
            let report = exp.run_model(kind, &cfg, &settings);
            eprintln!(
                "{name}/{}: recall@{} {:.4} ndcg {:.4} (best epoch {}, {:.1}s)",
                kind.label(),
                opts.k,
                report.best.recall,
                report.best.ndcg,
                report.best_epoch,
                start.elapsed().as_secs_f64()
            );
            per_model.push((report.best.recall, report.best.ndcg));
        }
        results.push(per_model);
    }

    let headers = [
        "Model",
        "OOI recall@20",
        "OOI ndcg@20",
        "GAGE recall@20",
        "GAGE ndcg@20",
        "paper (OOI r/n, GAGE r/n)",
    ];
    let mut rows = Vec::new();
    for (m, kind) in ModelKind::table2_order().into_iter().enumerate() {
        let p = paper[m];
        rows.push(vec![
            kind.label().to_string(),
            metric(results[0][m].0),
            metric(results[0][m].1),
            metric(results[1][m].0),
            metric(results[1][m].1),
            format!("{:.4}/{:.4}, {:.4}/{:.4}", p.1, p.2, p.3, p.4),
        ]);
    }
    // % improvement of CKAT over the best baseline.
    let best = |f: usize, sel: fn(&(f64, f64)) -> f64| {
        results[f][..7].iter().map(sel).fold(f64::MIN, f64::max)
    };
    let ckat = &results.iter().map(|f| f[7]).collect::<Vec<_>>();
    rows.push(vec![
        "% Impro.".to_string(),
        format!("{:.4}", improvement_pct(ckat[0].0, best(0, |x| x.0))),
        format!("{:.4}", improvement_pct(ckat[0].1, best(0, |x| x.1))),
        format!("{:.4}", improvement_pct(ckat[1].0, best(1, |x| x.0))),
        format!("{:.4}", improvement_pct(ckat[1].1, best(1, |x| x.1))),
        "6.1237/5.7399, 7.2624/6.0496".to_string(),
    ]);

    println!("\nTable II — overall performance comparison (measured vs paper)\n");
    println!("{}", format_table(&headers, &rows));
}
