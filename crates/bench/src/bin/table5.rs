//! Regenerate **Table V** — the propagation-depth ablation: CKAT with
//! L = 1, 2, 3 embedding-propagation layers.

use facility_bench::HarnessOpts;
use facility_ckat::report::{format_table, metric};
use facility_ckat::{Experiment, ExperimentConfig};

fn main() {
    let opts = HarnessOpts::from_args();
    let settings = opts.train_settings();
    let base_cfg = opts.ckat_config();
    let d = base_cfg.base.embed_dim;

    let depths: Vec<(String, Vec<usize>, [f64; 4])> = vec![
        ("CKAT-1".into(), vec![d], [0.3108, 0.2471, 0.3736, 0.3118]),
        ("CKAT-2".into(), vec![d, d / 2], [0.3209, 0.2478, 0.3821, 0.3215]),
        ("CKAT-3".into(), vec![d, d / 2, d / 4], [0.3217, 0.2561, 0.3919, 0.3278]),
    ];

    let mut measured: Vec<Vec<(f64, f64)>> = vec![Vec::new(); depths.len()];
    for (name, facility) in opts.facilities() {
        eprintln!("== preparing {name} ==");
        let exp = Experiment::prepare(&ExperimentConfig {
            facility,
            seed: opts.seed,
            ..ExperimentConfig::default()
        });
        for (di, (label, dims, _)) in depths.iter().enumerate() {
            let mut cfg = base_cfg.clone();
            cfg.layer_dims = dims.clone();
            let report = exp.run_ckat(&cfg, &settings);
            eprintln!(
                "{name}/{label}: recall {:.4} ndcg {:.4}",
                report.best.recall, report.best.ndcg
            );
            measured[di].push((report.best.recall, report.best.ndcg));
        }
    }

    let rows: Vec<Vec<String>> = depths
        .iter()
        .enumerate()
        .map(|(di, (label, _, paper))| {
            vec![
                label.clone(),
                metric(measured[di][0].0),
                metric(measured[di][0].1),
                metric(measured[di][1].0),
                metric(measured[di][1].1),
                format!("{:.4}/{:.4}, {:.4}/{:.4}", paper[0], paper[1], paper[2], paper[3]),
            ]
        })
        .collect();

    println!("\nTable V — propagation depth (measured vs paper)\n");
    println!(
        "{}",
        format_table(
            &[
                "Depth",
                "OOI recall@20",
                "OOI ndcg@20",
                "GAGE recall@20",
                "GAGE ndcg@20",
                "paper (OOI r/n, GAGE r/n)"
            ],
            &rows
        )
    );
}
