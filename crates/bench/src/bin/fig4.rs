//! Regenerate **Figure 4** — t-SNE of the data objects queried by the
//! eight most active users of the largest organization. Emits CSV points
//! (`x, y, user`) and reports a cluster-overlap statistic: the paper's
//! observation is that same-organization users' query clusters overlap.

use facility_bench::HarnessOpts;
use facility_datagen::{stats, Trace};
use facility_linalg::Matrix;
use facility_tsne::{run, TsneConfig};

fn main() {
    let opts = HarnessOpts::from_args();
    for (name, facility) in opts.facilities() {
        let trace = Trace::generate(&facility, opts.seed);
        let (org, top_users) = stats::top_users_of_largest_org(&trace, 8);
        let features = stats::item_feature_matrix(&trace);

        // Collect the distinct (user, item) queries of those users.
        let user_set: std::collections::HashMap<u32, usize> =
            top_users.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        let mut seen = std::collections::HashSet::new();
        let mut rows: Vec<&[f32]> = Vec::new();
        let mut owners: Vec<usize> = Vec::new();
        for e in &trace.events {
            if let Some(&slot) = user_set.get(&e.user) {
                if seen.insert((e.user, e.item)) {
                    rows.push(features.row(e.item as usize));
                    owners.push(slot);
                }
            }
        }
        let x = Matrix::from_rows(&rows);
        eprintln!("{name}: org {org}, {} queried objects from 8 users", x.rows());

        let y = run(
            &x,
            &TsneConfig { perplexity: 20.0, n_iter: 400, seed: opts.seed, ..Default::default() },
        );

        println!("# {name} — t-SNE of top-8 users' queried data objects (org {org})");
        println!("x,y,user");
        for r in 0..y.rows() {
            println!("{},{},{}", y[(r, 0)], y[(r, 1)], owners[r]);
        }
        println!();

        // Cluster-overlap statistic: fraction of points whose nearest
        // neighbor belongs to a *different* user. High overlap = the
        // same-organization users query similar data (paper's finding).
        let n = y.rows();
        let mut cross = 0usize;
        for i in 0..n {
            let mut best = usize::MAX;
            let mut best_d = f32::INFINITY;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let dx = y[(i, 0)] - y[(j, 0)];
                let dy = y[(i, 1)] - y[(j, 1)];
                let d = dx * dx + dy * dy;
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            if owners[best] != owners[i] {
                cross += 1;
            }
        }
        eprintln!(
            "{name}: {:.1}% of points have a nearest neighbor from another user \
             (higher = more overlap across same-org users)",
            100.0 * cross as f64 / n.max(1) as f64
        );
    }
}
