//! Per-kernel scalar-vs-SIMD microbenchmark for `facility_linalg::kernels`.
//!
//! Times every backward-path kernel in both renderings — the naive scalar
//! oracle and the 8-lane unrolled path — on shapes drawn from the CKAT
//! workload (tall-skinny entity×projection matmuls, per-edge head-dim
//! dots, flat parameter-sized vectors), reports ns/call, GB/s and
//! GFLOP/s, and writes the lot to `BENCH_kernels.json`.
//!
//! Before timing, each case runs once in each rendering on identical
//! inputs and the outputs are compared **bitwise** — the same contract
//! `crates/linalg/tests/kernel_diff.rs` proves exhaustively. Exits
//! nonzero if any kernel's two renderings disagree on a single bit, so
//! the CI bench-smoke job doubles as an end-to-end determinism check on
//! release-opt codegen (the differential suite runs under the test
//! profile; this binary covers `--release`).
//!
//! The run also self-gates on *performance*: a dispatched kernel that
//! times >10% slower than its scalar oracle is re-measured at 5x the
//! iteration budget (to rule out scheduler noise), and a confirmed
//! regression fails the run. The dispatch layer exists purely to go
//! faster — a rendering that loses to the oracle should be routed back
//! to scalar (see `dispatch_flat!`), not silently shipped.
//!
//! `--fast` shrinks the iteration budget for CI smoke runs.

use facility_linalg::kernels;
use std::fmt::Write as _;
use std::time::Instant;

/// Signature of the fused activation-backward kernels.
type ActGradFn = fn(&[f32], &[f32], &mut [f32]);

/// Entity embedding width used across the CKAT configs.
const D: usize = 64;
/// Attention head / relation-projection width.
const K: usize = 16;
/// Row count for the tall-skinny gather/matmul shapes — about one
/// macro-step's worth of gathered entity rows on the default profile.
const ROWS: usize = 2048;
/// Flat-vector length for the elementwise kernels (one embedding table
/// shard's worth of parameters).
const FLAT: usize = 1 << 16;

/// Deterministic splitmix-style value generator — no RNG state to seed,
/// so every run (and both renderings within a run) sees identical bits.
fn val(i: usize, salt: u64) -> f32 {
    let mut z = (i as u64).wrapping_add(salt).wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
}

fn vec_of(n: usize, salt: u64) -> Vec<f32> {
    (0..n).map(|i| val(i, salt)).collect()
}

/// One benchmarked kernel invocation. The closure runs the kernel; when
/// called with `collect = true` it must return the bits of every output
/// byte the kernel produced (for the scalar-vs-SIMD differential), and
/// when `collect = false` it returns an empty vec so the timed loop pays
/// no allocation overhead.
struct Case {
    name: &'static str,
    shape: String,
    /// Bytes moved per call (reads + writes) for the GB/s column.
    bytes: u64,
    /// Floating-point ops per call for the GFLOP/s column.
    flops: u64,
    run: Box<dyn FnMut(bool) -> Vec<u32>>,
}

fn time_case(case: &mut Case, iters: u32) -> f64 {
    // Warm the caches and the branch predictor once before timing.
    let _ = (case.run)(false);
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box((case.run)(false));
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Minimum dispatched-vs-scalar speedup before a kernel counts as a
/// performance regression (i.e. no kernel may be >10% slower than its
/// scalar oracle).
const MIN_SPEEDUP: f64 = 0.90;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let iters: u32 = if fast { 20 } else { 200 };

    let mut cases = build_cases();
    let mut rows = Vec::new();
    let mut mismatches = 0usize;
    let mut regressions: Vec<String> = Vec::new();

    for case in &mut cases {
        // Bitwise differential first: identical inputs, both renderings.
        kernels::set_scalar_kernels(true);
        let scalar_bits = (case.run)(true);
        kernels::set_scalar_kernels(false);
        let simd_bits = (case.run)(true);
        let bitwise_equal = scalar_bits == simd_bits;
        if !bitwise_equal {
            mismatches += 1;
            eprintln!("BITWISE MISMATCH: {} ({})", case.name, case.shape);
        }

        kernels::set_scalar_kernels(true);
        let mut scalar_ns = time_case(case, iters);
        kernels::set_scalar_kernels(false);
        let mut simd_ns = time_case(case, iters);

        // Perf self-gate: a dispatched kernel slower than its scalar
        // oracle by >10% is re-measured at 5x the budget before it
        // counts — one noisy quantum on a busy CI box shouldn't fail
        // the run, a real routing regression should.
        if scalar_ns / simd_ns < MIN_SPEEDUP {
            kernels::set_scalar_kernels(true);
            scalar_ns = time_case(case, iters * 5);
            kernels::set_scalar_kernels(false);
            simd_ns = time_case(case, iters * 5);
            if scalar_ns / simd_ns < MIN_SPEEDUP {
                regressions.push(format!("{} ({:.3}x)", case.name, scalar_ns / simd_ns));
                eprintln!(
                    "PERF REGRESSION: {} dispatched {:.3}x vs scalar (floor {MIN_SPEEDUP})",
                    case.name,
                    scalar_ns / simd_ns,
                );
            }
        }

        let gbps = case.bytes as f64 / simd_ns;
        let gflops = case.flops as f64 / simd_ns;
        println!(
            "{:<28} {:<22} scalar {:>9.0} ns  simd {:>9.0} ns  {:>5.2}x  {:>6.2} GB/s  {:>6.2} GFLOP/s{}",
            case.name,
            case.shape,
            scalar_ns,
            simd_ns,
            scalar_ns / simd_ns,
            gbps,
            gflops,
            if bitwise_equal { "" } else { "  [MISMATCH]" },
        );
        rows.push(format!(
            concat!(
                "    {{\"kernel\": \"{}\", \"shape\": \"{}\", ",
                "\"scalar_ns_per_call\": {:.1}, \"simd_ns_per_call\": {:.1}, ",
                "\"speedup\": {:.3}, \"simd_gbps\": {:.3}, \"simd_gflops\": {:.3}, ",
                "\"bitwise_equal\": {}}}"
            ),
            case.name,
            case.shape,
            scalar_ns,
            simd_ns,
            scalar_ns / simd_ns,
            gbps,
            gflops,
            bitwise_equal,
        ));
    }

    let mut json = String::from("{\n  \"bench\": \"kernels\",\n");
    let _ = writeln!(json, "  \"iters_per_case\": {iters},");
    let _ = writeln!(json, "  \"bitwise_mismatches\": {mismatches},");
    let _ = writeln!(json, "  \"min_speedup_gate\": {MIN_SPEEDUP},");
    let _ = writeln!(json, "  \"perf_regressions\": {},", regressions.len());
    json.push_str("  \"kernels\": [\n");
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json ({} kernels)", rows.len());

    if mismatches > 0 {
        eprintln!("{mismatches} kernel(s) diverged bitwise between renderings");
        std::process::exit(1);
    }
    if !regressions.is_empty() {
        eprintln!(
            "{} dispatched kernel(s) confirmed >10% slower than scalar: {}",
            regressions.len(),
            regressions.join(", "),
        );
        std::process::exit(1);
    }
}

fn build_cases() -> Vec<Case> {
    let mut cases: Vec<Case> = Vec::new();

    // --- Lane-folded reductions -------------------------------------
    {
        let a = vec_of(FLAT, 1);
        let b = vec_of(FLAT, 2);
        cases.push(Case {
            name: "dot",
            shape: format!("n={FLAT}"),
            bytes: 8 * FLAT as u64,
            flops: 2 * FLAT as u64,
            run: Box::new(move |collect| {
                let r = kernels::dot(&a, &b).to_bits();
                if collect {
                    vec![r]
                } else {
                    Vec::new()
                }
            }),
        });
    }
    {
        let a = vec_of(FLAT, 3);
        cases.push(Case {
            name: "sum",
            shape: format!("n={FLAT}"),
            bytes: 4 * FLAT as u64,
            flops: FLAT as u64,
            run: Box::new(move |collect| {
                let r = kernels::sum(&a).to_bits();
                if collect {
                    vec![r]
                } else {
                    Vec::new()
                }
            }),
        });
    }
    {
        // The attention score inner loop: Σ t·tanh(h + r) at head width K,
        // batched here over many edges' worth of contiguous lanes.
        let n = ROWS * K;
        let t = vec_of(n, 4);
        let h = vec_of(n, 5);
        let r = vec_of(n, 6);
        cases.push(Case {
            name: "fused_tanh_dot",
            shape: format!("n={n}"),
            bytes: 12 * n as u64,
            flops: 4 * n as u64, // add + tanh + mul + acc
            run: Box::new(move |collect| {
                let r = kernels::fused_tanh_dot(&t, &h, &r).to_bits();
                if collect {
                    vec![r]
                } else {
                    Vec::new()
                }
            }),
        });
    }

    // --- Blocked matmuls (forward + both backward transposes) --------
    {
        let a = vec_of(ROWS * D, 7);
        let b = vec_of(D * K, 8);
        let mut out = vec![0.0f32; ROWS * K];
        cases.push(Case {
            name: "matmul_rows_into",
            shape: format!("{ROWS}x{D} * {D}x{K}"),
            bytes: 4 * (ROWS * D + D * K + 2 * ROWS * K) as u64,
            flops: 2 * (ROWS * D * K) as u64,
            run: Box::new(move |collect| {
                out.fill(0.0);
                kernels::matmul_rows_into(&a, D, &b, K, &mut out);
                if collect {
                    out.iter().map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }
    {
        let a = vec_of(ROWS * K, 9);
        let b = vec_of(D * K, 10);
        let mut out = vec![0.0f32; ROWS * D];
        cases.push(Case {
            name: "matmul_transpose_b_rows_into",
            shape: format!("{ROWS}x{K} * ({D}x{K})^T"),
            bytes: 4 * (ROWS * K + D * K + 2 * ROWS * D) as u64,
            flops: 2 * (ROWS * K * D) as u64,
            run: Box::new(move |collect| {
                out.fill(0.0);
                kernels::matmul_transpose_b_rows_into(&a, K, &b, D, &mut out);
                if collect {
                    out.iter().map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }
    {
        let a = vec_of(ROWS * D, 11);
        let b = vec_of(ROWS * K, 12);
        let mut out = vec![0.0f32; D * K];
        cases.push(Case {
            name: "transpose_matmul_into",
            shape: format!("({ROWS}x{D})^T * {ROWS}x{K}"),
            bytes: 4 * (ROWS * D + ROWS * K + 2 * D * K) as u64,
            flops: 2 * (ROWS * D * K) as u64,
            run: Box::new(move |collect| {
                out.fill(0.0);
                kernels::transpose_matmul_into(&a, D, &b, K, &mut out);
                if collect {
                    out.iter().map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }

    // --- Gather / scatter (sparse-grad backbone) ---------------------
    {
        let src = vec_of(4 * ROWS * D, 13);
        // Strided pseudo-random indices incl. repeats, like batch sampling.
        let idx: Vec<usize> = (0..ROWS).map(|i| (i * 2654435761) % (4 * ROWS)).collect();
        let mut out = vec![0.0f32; ROWS * D];
        cases.push(Case {
            name: "gather_rows_into",
            shape: format!("{ROWS} rows x {D}"),
            bytes: 4 * (2 * ROWS * D) as u64,
            flops: 0,
            run: Box::new(move |collect| {
                kernels::gather_rows_into(&src, D, &idx, &mut out);
                if collect {
                    out.iter().map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }
    {
        let src = vec_of(ROWS * D, 14);
        let idx: Vec<usize> = (0..ROWS).map(|i| (i * 2654435761) % (4 * ROWS)).collect();
        let mut dst = vec![0.0f32; 4 * ROWS * D];
        cases.push(Case {
            name: "scatter_add_rows",
            shape: format!("{ROWS} rows x {D} (dup idx)"),
            bytes: 4 * (3 * ROWS * D) as u64,
            flops: (ROWS * D) as u64,
            run: Box::new(move |collect| {
                dst.fill(0.0);
                kernels::scatter_add_rows(&mut dst, D, &idx, &src);
                if collect {
                    dst.iter().map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }

    // --- Elementwise column-lane kernels ------------------------------
    {
        let src = vec_of(FLAT, 15);
        let mut dst = vec_of(FLAT, 16);
        cases.push(Case {
            name: "axpy",
            shape: format!("n={FLAT}"),
            bytes: 4 * (3 * FLAT) as u64,
            flops: 2 * FLAT as u64,
            run: Box::new(move |collect| {
                dst.fill(0.5);
                kernels::axpy(&mut dst, -0.125, &src);
                if collect {
                    dst.iter().map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }
    {
        let a = vec_of(FLAT, 17);
        let b = vec_of(FLAT, 18);
        let mut dst = vec![0.0f32; FLAT];
        cases.push(Case {
            name: "hadamard_acc",
            shape: format!("n={FLAT}"),
            bytes: 4 * (4 * FLAT) as u64,
            flops: 2 * FLAT as u64,
            run: Box::new(move |collect| {
                dst.fill(0.0);
                kernels::hadamard_acc(&mut dst, &a, &b);
                if collect {
                    dst.iter().map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }
    {
        let w = vec_of(ROWS, 19);
        let mut data = vec![0.0f32; ROWS * D];
        let init = vec_of(ROWS * D, 20);
        cases.push(Case {
            name: "scale_rows",
            shape: format!("{ROWS} rows x {D}"),
            bytes: 4 * (2 * ROWS * D + ROWS) as u64,
            flops: (ROWS * D) as u64,
            run: Box::new(move |collect| {
                data.copy_from_slice(&init);
                kernels::scale_rows(&mut data, D, &w);
                if collect {
                    data.iter().map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }
    {
        let a = vec_of(ROWS * D, 21);
        let b = vec_of(ROWS * D, 22);
        let mut out = vec![0.0f32; ROWS];
        cases.push(Case {
            name: "rowwise_dot_into",
            shape: format!("{ROWS} rows x {D}"),
            bytes: 4 * (2 * ROWS * D + ROWS) as u64,
            flops: 2 * (ROWS * D) as u64,
            run: Box::new(move |collect| {
                kernels::rowwise_dot_into(&a, &b, D, &mut out);
                if collect {
                    out.iter().map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }

    // --- Fused MulBroadcastCol backward (attention row-scale) ---------
    {
        let g = vec_of(ROWS * D, 31);
        let a = vec_of(ROWS * D, 32);
        let w = vec_of(ROWS, 33);
        let mut da = vec![0.0f32; ROWS * D];
        let mut dw = vec![0.0f32; ROWS];
        cases.push(Case {
            name: "mul_broadcast_col_grad",
            shape: format!("{ROWS} rows x {D}"),
            bytes: 4 * (3 * ROWS * D + 2 * ROWS) as u64,
            flops: (3 * ROWS * D) as u64,
            run: Box::new(move |collect| {
                kernels::mul_broadcast_col_grad(&g, &a, &w, D, &mut da, &mut dw);
                if collect {
                    da.iter().chain(dw.iter()).map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }

    // --- Fused attention aggregation (gather → scale → segment-sum) ---
    {
        let n_seg = ROWS / 4;
        let tails: Vec<usize> = (0..ROWS).map(|e| (e * 7 + 3) % ROWS).collect();
        let heads: Vec<usize> = (0..ROWS).map(|e| (e * 5 + 1) % n_seg).collect();
        let h = vec_of(ROWS * D, 34);
        let att = vec_of(ROWS, 35);
        let mut out = vec![0.0f32; n_seg * D];
        let (t2, hd2) = (tails.clone(), heads.clone());
        cases.push(Case {
            name: "gather_scale_segment_sum_into",
            shape: format!("{ROWS} edges x {D} -> {n_seg} segs"),
            bytes: 4 * (3 * ROWS * D + ROWS) as u64,
            flops: (2 * ROWS * D) as u64,
            run: Box::new(move |collect| {
                out.iter_mut().for_each(|v| *v = 0.0);
                kernels::gather_scale_segment_sum_into(&h, D, &t2, &att, &hd2, &mut out);
                if collect {
                    out.iter().map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });

        let g = vec_of(n_seg * D, 36);
        let h2 = vec_of(ROWS * D, 34);
        let att2 = vec_of(ROWS, 35);
        let mut dh = vec![0.0f32; ROWS * D];
        let mut datt = vec![0.0f32; ROWS];
        cases.push(Case {
            name: "gather_scale_segment_sum_grad",
            shape: format!("{ROWS} edges x {D} -> {n_seg} segs"),
            bytes: 4 * (4 * ROWS * D + 2 * ROWS) as u64,
            flops: (4 * ROWS * D) as u64,
            run: Box::new(move |collect| {
                dh.iter_mut().for_each(|v| *v = 0.0);
                datt.iter_mut().for_each(|v| *v = 0.0);
                kernels::gather_scale_segment_sum_grad(
                    &g, &h2, D, &tails, &att2, &heads, &mut dh, &mut datt,
                );
                if collect {
                    dh.iter().chain(datt.iter()).map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }

    // --- Fused activation backwards -----------------------------------
    let grads: [(&'static str, ActGradFn); 3] = [
        ("tanh_grad_mul", kernels::tanh_grad_mul),
        ("sigmoid_grad_mul", kernels::sigmoid_grad_mul),
        ("leaky_relu_grad_mul", kernels::leaky_relu_grad_mul),
    ];
    for (name, f) in grads {
        let x = vec_of(FLAT, 23);
        let g = vec_of(FLAT, 24);
        let mut out = vec![0.0f32; FLAT];
        cases.push(Case {
            name,
            shape: format!("n={FLAT}"),
            bytes: 4 * (3 * FLAT) as u64,
            flops: 3 * FLAT as u64,
            run: Box::new(move |collect| {
                f(&x, &g, &mut out);
                if collect {
                    out.iter().map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }

    // --- Segment softmax (attention normalization) --------------------
    {
        // CSR segments of mixed length incl. empties, like per-head
        // neighborhood fans.
        let mut offsets = vec![0usize];
        let mut total = 0usize;
        let mut s = 0usize;
        while total < ROWS * 8 {
            let len = [0, 3, 8, 17, 33][s % 5];
            total += len;
            offsets.push(total);
            s += 1;
        }
        let init = vec_of(total, 25);
        let g = vec_of(total, 26);
        let mut data = vec![0.0f32; total];
        let mut grad = vec![0.0f32; total];
        cases.push(Case {
            name: "segment_softmax_fwd+bwd",
            shape: format!("{total} scores / {} segs", offsets.len() - 1),
            bytes: 4 * (4 * total) as u64,
            flops: 8 * total as u64,
            run: Box::new(move |collect| {
                data.copy_from_slice(&init);
                kernels::segment_softmax_in_place(&mut data, &offsets);
                kernels::segment_softmax_grad_into(&data, &g, &offsets, &mut grad);
                if collect {
                    data.iter().chain(grad.iter()).map(|v| v.to_bits()).collect()
                } else {
                    Vec::new()
                }
            }),
        });
    }

    cases
}
