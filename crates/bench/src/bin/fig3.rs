//! Regenerate **Figure 3** — the per-user query distribution curves
//! (distinct data objects, instrument locations, and data types), emitted
//! as CSV: one row per user rank, one column per series.

use facility_bench::HarnessOpts;
use facility_datagen::{stats, Trace};

fn main() {
    let opts = HarnessOpts::from_args();
    for (name, facility) in opts.facilities() {
        let trace = Trace::generate(&facility, opts.seed);
        let s = stats::fig3_series(&trace);
        println!("# {name}: {} users, {} raw query events", facility.n_users, trace.n_events());
        println!("user_rank,distinct_data_objects,distinct_locations,distinct_data_types");
        for i in 0..s.data_objects.len() {
            println!("{},{},{},{}", i, s.data_objects[i], s.locations[i], s.data_types[i]);
        }
        println!();
        // Summary of the distribution shape for quick comparison against
        // the paper's curves (heavy-tailed: max >> median).
        let head = s.data_objects.first().copied().unwrap_or(0);
        let median = s.data_objects.get(s.data_objects.len() / 2).copied().unwrap_or(0);
        eprintln!(
            "{name}: max distinct objects {head}, median {median} (heavy tail ratio {:.1}x)",
            head as f64 / median.max(1) as f64
        );
    }
}
