//! Per-phase CKAT epoch profiling: batch-local subgraph propagation vs
//! the full-graph oracle, on one simulated facility.
//!
//! Trains a few epochs in each mode with identical seeds, collects the
//! [`EpochProfile`] each epoch (sampling / attention refresh / forward /
//! backward / eval wall time, estimated forward FLOPs, and gathered-vs-
//! full row/edge counts), and writes the lot to `BENCH_ckat_epoch.json`
//! so later PRs have a perf trajectory to compare against. Exits nonzero
//! if the batch-local mode fails to gather strictly fewer rows and edges
//! than full-graph propagation.

use facility_bench::HarnessOpts;
use facility_ckat::{Experiment, ExperimentConfig};
use facility_linalg::seeded_rng;
use facility_models::ckat::Ckat;
use facility_models::{EpochProfile, Recommender};
use std::time::Instant;

const EPOCHS: usize = 3;

fn run_entry(mode: &str, epoch: usize, loss: f32, p: &EpochProfile) -> String {
    format!(
        concat!(
            "    {{\"mode\": \"{}\", \"epoch\": {}, \"loss\": {:.6}, ",
            "\"sampling_ns\": {}, \"attention_ns\": {}, \"forward_ns\": {}, ",
            "\"backward_ns\": {}, \"eval_ns\": {}, \"forward_flops\": {}, ",
            "\"gathered_rows\": {}, \"gathered_edges\": {}, ",
            "\"full_rows\": {}, \"full_edges\": {}, \"batches\": {}, ",
            "\"row_fraction\": {:.6}, \"edge_fraction\": {:.6}}}"
        ),
        mode,
        epoch,
        loss,
        p.sampling_ns,
        p.attention_ns,
        p.forward_ns,
        p.backward_ns,
        p.eval_ns,
        p.forward_flops,
        p.gathered_rows,
        p.gathered_edges,
        p.full_rows,
        p.full_edges,
        p.batches,
        p.row_fraction(),
        p.edge_fraction(),
    )
}

fn main() {
    let opts = HarnessOpts::from_args();
    let (name, facility) = opts.facilities().remove(0);
    let exp = Experiment::prepare(&ExperimentConfig {
        facility,
        seed: opts.seed,
        ..ExperimentConfig::default()
    });
    let ctx = exp.ctx();
    eprintln!(
        "== epoch profile on {name}: {} entities, {} edges ==",
        exp.ckg.n_entities(),
        exp.ckg.n_edges()
    );

    // Profile at a small batch and depth 2: receptive-field locality is a
    // function of seeds-per-batch relative to graph size, and the profile
    // worlds are tiny (a few thousand entities) with hub attribute nodes
    // (shared sites/data types), so a paper-sized batch of 512 seeds at
    // depth 3 saturates the L-hop closure. 32 seeds at depth 2 is the
    // regime the subgraph engine targets at facility scale, where the CKG
    // is orders of magnitude larger than one batch's neighborhood.
    const PROFILE_BATCH: usize = 32;

    let mut entries: Vec<String> = Vec::new();
    let mut totals: Vec<(&str, EpochProfile)> = Vec::new();
    for (mode, batch_local) in [("batch_local", true), ("full_graph", false)] {
        let mut cfg = opts.ckat_config();
        cfg.batch_local = batch_local;
        cfg.base.batch_size = PROFILE_BATCH;
        let d = cfg.base.embed_dim;
        cfg.layer_dims = vec![d, d / 2];
        let mut model = Ckat::new(&ctx, &cfg);
        let mut rng = seeded_rng(opts.seed);
        let mut sum = EpochProfile::default();
        for epoch in 1..=EPOCHS {
            let loss = model.train_epoch(&ctx, &mut rng);
            let mut p = model.take_epoch_profile().expect("CKAT records profiles");
            let clock = Instant::now();
            model.prepare_eval(&ctx);
            p.eval_ns = clock.elapsed().as_nanos() as u64;
            eprintln!(
                "  {mode} epoch {epoch}: loss {loss:.4}, forward {:.1} ms, \
                 backward {:.1} ms, rows {}/{}, edges {}/{}",
                p.forward_ns as f64 / 1e6,
                p.backward_ns as f64 / 1e6,
                p.gathered_rows,
                p.full_rows,
                p.gathered_edges,
                p.full_edges,
            );
            entries.push(run_entry(mode, epoch, loss, &p));
            sum.sampling_ns += p.sampling_ns;
            sum.attention_ns += p.attention_ns;
            sum.forward_ns += p.forward_ns;
            sum.backward_ns += p.backward_ns;
            sum.eval_ns += p.eval_ns;
            sum.forward_flops += p.forward_flops;
            sum.gathered_rows += p.gathered_rows;
            sum.gathered_edges += p.gathered_edges;
            sum.full_rows += p.full_rows;
            sum.full_edges += p.full_edges;
            sum.batches += p.batches;
        }
        totals.push((mode, sum));
    }

    let local = totals[0].1;
    let full = totals[1].1;
    let speedup = full.forward_ns as f64 / local.forward_ns.max(1) as f64;
    let json = format!(
        concat!(
            "{{\n",
            "  \"facility\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"n_entities\": {},\n",
            "  \"n_edges\": {},\n",
            "  \"epochs_per_mode\": {},\n",
            "  \"runs\": [\n{}\n  ],\n",
            "  \"summary\": {{\n",
            "    \"batch_local_row_fraction\": {:.6},\n",
            "    \"batch_local_edge_fraction\": {:.6},\n",
            "    \"batch_local_flop_fraction\": {:.6},\n",
            "    \"forward_speedup_vs_full\": {:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        name,
        opts.seed,
        exp.ckg.n_entities(),
        exp.ckg.n_edges(),
        EPOCHS,
        entries.join(",\n"),
        local.row_fraction(),
        local.edge_fraction(),
        local.forward_flops as f64 / full.forward_flops.max(1) as f64,
        speedup,
    );
    std::fs::write("BENCH_ckat_epoch.json", &json).expect("write BENCH_ckat_epoch.json");
    println!(
        "batch-local gathered {:.1}% of rows, {:.1}% of edges; forward speedup {speedup:.2}x \
         -> BENCH_ckat_epoch.json",
        100.0 * local.row_fraction(),
        100.0 * local.edge_fraction(),
    );

    assert!(
        local.gathered_rows < local.full_rows,
        "batch-local mode must gather strictly fewer rows than the full graph \
         ({} vs {})",
        local.gathered_rows,
        local.full_rows
    );
    assert!(
        local.gathered_edges < local.full_edges,
        "batch-local mode must propagate strictly fewer edges than the full graph \
         ({} vs {})",
        local.gathered_edges,
        local.full_edges
    );
}
