//! Per-phase CKAT epoch profiling: batch-local subgraph propagation vs
//! the full-graph oracle, on one simulated facility.
//!
//! Trains a few epochs in each mode with identical seeds, collects the
//! [`EpochProfile`] each epoch (sampling / attention refresh / forward /
//! backward / optimizer / prefetch timings, estimated forward FLOPs, and
//! gathered-vs-full row/edge counts), and writes the lot to
//! `BENCH_ckat_epoch.json` so later PRs have a perf trajectory to compare
//! against. Dropout is forced off (`keep_prob = 1.0`) in both modes so the
//! two loss trajectories are directly comparable — the sparse/lazy
//! batch-local path is proven bitwise-equal to the dense full-graph oracle
//! in that regime (`tests/batch_local_diff.rs`), and this binary asserts
//! the trajectories agree within float tolerance as an end-to-end check of
//! the same claim. Exits nonzero if batch-local mode fails to gather
//! strictly fewer rows and edges than full-graph propagation, or if the
//! losses drift apart.
//!
//! `--epochs N` overrides the default 3 epochs per mode; `--huge` profiles
//! the ~106k-entity stress world where the sparse path's advantage is
//! decisive rather than incremental.
//!
//! `--replicas N` switches the binary to the **replica sweep**: instead of
//! the batch-local/full-graph comparison it trains the same CKAT on the
//! deterministic macro-step path at every replica count in
//! `{1, 2, 4, 8} ∩ [1, N]`, asserts the loss trajectories are **bitwise
//! identical** across counts (the schedule is thread-count-invariant by
//! construction), reports wall-clock speedups vs `R = 1`, and merges one
//! record per facility into `BENCH_ckat_replicas.json`. The `> 1.5×`
//! speedup gate at `R = 4` only fires on the `--huge` world with at least
//! 4 cores — on fewer cores the sweep still proves determinism and
//! records honest (≈1×) numbers.
//!
//! The sweep runs with the hub-representation cache on (the default
//! config) and always enforces the extraction-scaling gate: aggregate
//! extraction CPU (`extract_ns`, summed across the pool) at the largest
//! replica count must stay within [`EXTRACT_CPU_RTOL`]× of `R = 1`,
//! because one shared union traversal per macro-step serves every
//! micro-batch regardless of `R`.

use facility_bench::{HarnessOpts, Profile};
use facility_ckat::{Experiment, ExperimentConfig};
use facility_linalg::seeded_rng;
use facility_models::ckat::Ckat;
use facility_models::replica::MACRO_WIDTH;
use facility_models::{EpochProfile, Recommender};
use std::time::Instant;

const DEFAULT_EPOCHS: usize = 3;

/// Relative tolerance for the cross-mode loss comparison. The paths are
/// bitwise-identical by construction at `keep_prob = 1.0`, but the gate is
/// a float comparison so a future legitimate reordering (e.g. a fused
/// kernel) degrades this check to "still training the same model" instead
/// of tripping on the last ulp.
const LOSS_RTOL: f32 = 1e-5;

fn run_entry(mode: &str, epoch: usize, loss: f32, p: &EpochProfile) -> String {
    format!(
        concat!(
            "    {{\"mode\": \"{}\", \"epoch\": {}, \"loss\": {:.6}, ",
            "\"sampling_ns\": {}, \"attention_ns\": {}, \"forward_ns\": {}, ",
            "\"backward_ns\": {}, \"optimizer_ns\": {}, \"extract_ns\": {}, ",
            "\"extract_wall_ns\": {}, \"extract_wait_ns\": {}, ",
            "\"hub_cache_ns\": {}, \"eval_ns\": {}, \"forward_flops\": {}, ",
            "\"gathered_rows\": {}, \"gathered_edges\": {}, ",
            "\"full_rows\": {}, \"full_edges\": {}, \"batches\": {}, ",
            "\"row_fraction\": {:.6}, \"edge_fraction\": {:.6}}}"
        ),
        mode,
        epoch,
        loss,
        p.sampling_ns,
        p.attention_ns,
        p.forward_ns,
        p.backward_ns,
        p.optimizer_ns,
        p.extract_ns,
        p.extract_wall_ns,
        p.extract_wait_ns,
        p.hub_cache_ns,
        p.eval_ns,
        p.forward_flops,
        p.gathered_rows,
        p.gathered_edges,
        p.full_rows,
        p.full_edges,
        p.batches,
        p.row_fraction(),
        p.edge_fraction(),
    )
}

fn main() {
    let opts = HarnessOpts::from_args();
    let epochs = opts.epochs.unwrap_or(DEFAULT_EPOCHS);
    let (name, facility) = opts.facilities().remove(0);
    let exp = Experiment::prepare(&ExperimentConfig {
        facility,
        seed: opts.seed,
        ..ExperimentConfig::default()
    });
    let ctx = exp.ctx();
    eprintln!(
        "== epoch profile on {name}: {} entities, {} edges ==",
        exp.ckg.n_entities(),
        exp.ckg.n_edges()
    );

    // Profile at a small batch and depth 2 on the paper-scale worlds:
    // receptive-field locality is a function of seeds-per-batch relative to
    // graph size, and those worlds are tiny (a few thousand entities) with
    // hub attribute nodes (shared sites/data types), so a paper-sized batch
    // of 512 seeds at depth 3 saturates the L-hop closure. 32 seeds at
    // depth 2 is the regime the subgraph engine targets at facility scale.
    // The huge world IS facility scale, so it keeps its configured batch.
    let profile_batch =
        if opts.profile == Profile::Huge { opts.model_config().batch_size } else { 32 };

    if let Some(max_r) = opts.replicas {
        run_replica_sweep(&opts, name, &exp, epochs, max_r, profile_batch);
        return;
    }

    let mut entries: Vec<String> = Vec::new();
    let mut totals: Vec<(&str, EpochProfile)> = Vec::new();
    let mut losses: Vec<Vec<f32>> = Vec::new();
    for (mode, batch_local) in [("batch_local", true), ("full_graph", false)] {
        let mut cfg = opts.ckat_config();
        cfg.batch_local = batch_local;
        cfg.base.batch_size = profile_batch;
        // No dropout: makes the two modes' RNG consumption and loss
        // trajectories directly comparable (bitwise-equal by the autograd
        // differential tests).
        cfg.base.keep_prob = 1.0;
        let d = cfg.base.embed_dim;
        cfg.layer_dims = vec![d, d / 2];
        let mut model = Ckat::new(&ctx, &cfg);
        let mut rng = seeded_rng(opts.seed);
        let mut sum = EpochProfile::default();
        let mut mode_losses = Vec::with_capacity(epochs);
        for epoch in 1..=epochs {
            let loss = model.train_epoch(&ctx, &mut rng);
            let mut p = model.take_epoch_profile().expect("CKAT records profiles");
            // Time the full evaluation like the trainer does: cached-matrix
            // extraction plus the top-K ranking pass (which goes through
            // the blocked multi-query retrieval engine).
            let clock = Instant::now();
            model.prepare_eval(&ctx);
            std::hint::black_box(facility_eval::evaluate(&model, ctx.inter, opts.k));
            p.eval_ns = clock.elapsed().as_nanos() as u64;
            eprintln!(
                "  {mode} epoch {epoch}: loss {loss:.4}, forward {:.1} ms, \
                 backward {:.1} ms, optimizer {:.1} ms, extract {:.1} ms \
                 (waited {:.1} ms), rows {}/{}, edges {}/{}",
                p.forward_ns as f64 / 1e6,
                p.backward_ns as f64 / 1e6,
                p.optimizer_ns as f64 / 1e6,
                p.extract_ns as f64 / 1e6,
                p.extract_wait_ns as f64 / 1e6,
                p.gathered_rows,
                p.full_rows,
                p.gathered_edges,
                p.full_edges,
            );
            entries.push(run_entry(mode, epoch, loss, &p));
            mode_losses.push(loss);
            sum.sampling_ns += p.sampling_ns;
            sum.attention_ns += p.attention_ns;
            sum.forward_ns += p.forward_ns;
            sum.backward_ns += p.backward_ns;
            sum.optimizer_ns += p.optimizer_ns;
            sum.extract_ns += p.extract_ns;
            sum.extract_wall_ns += p.extract_wall_ns;
            sum.extract_wait_ns += p.extract_wait_ns;
            sum.hub_cache_ns += p.hub_cache_ns;
            sum.eval_ns += p.eval_ns;
            sum.forward_flops += p.forward_flops;
            sum.gathered_rows += p.gathered_rows;
            sum.gathered_edges += p.gathered_edges;
            sum.full_rows += p.full_rows;
            sum.full_edges += p.full_edges;
            sum.batches += p.batches;
        }
        totals.push((mode, sum));
        losses.push(mode_losses);
    }

    let local = totals[0].1;
    let full = totals[1].1;
    let forward_speedup = full.forward_ns as f64 / local.forward_ns.max(1) as f64;
    let backward_speedup = full.backward_ns as f64 / local.backward_ns.max(1) as f64;
    let end_to_end_speedup = full.train_ns() as f64 / local.train_ns().max(1) as f64;
    let json = format!(
        concat!(
            "{{\n",
            "  \"facility\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"n_entities\": {},\n",
            "  \"n_edges\": {},\n",
            "  \"epochs_per_mode\": {},\n",
            "  \"runs\": [\n{}\n  ],\n",
            "  \"summary\": {{\n",
            "    \"batch_local_row_fraction\": {:.6},\n",
            "    \"batch_local_edge_fraction\": {:.6},\n",
            "    \"batch_local_flop_fraction\": {:.6},\n",
            "    \"optimizer_ns\": {{\"batch_local\": {}, \"full_graph\": {}}},\n",
            "    \"forward_speedup_vs_full\": {:.3},\n",
            "    \"backward_speedup_vs_full\": {:.3},\n",
            "    \"end_to_end_speedup_vs_full\": {:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        name,
        opts.seed,
        exp.ckg.n_entities(),
        exp.ckg.n_edges(),
        epochs,
        entries.join(",\n"),
        local.row_fraction(),
        local.edge_fraction(),
        local.forward_flops as f64 / full.forward_flops.max(1) as f64,
        local.optimizer_ns,
        full.optimizer_ns,
        forward_speedup,
        backward_speedup,
        end_to_end_speedup,
    );
    std::fs::write("BENCH_ckat_epoch.json", &json).expect("write BENCH_ckat_epoch.json");
    println!(
        "batch-local gathered {:.1}% of rows, {:.1}% of edges; speedups vs full: \
         forward {forward_speedup:.2}x, backward {backward_speedup:.2}x, \
         end-to-end {end_to_end_speedup:.2}x -> BENCH_ckat_epoch.json",
        100.0 * local.row_fraction(),
        100.0 * local.edge_fraction(),
    );

    for (epoch, (l, f)) in losses[0].iter().zip(&losses[1]).enumerate() {
        assert!(
            (l - f).abs() <= LOSS_RTOL * l.abs().max(1.0),
            "epoch {} loss diverged between modes: batch_local {l} vs full_graph {f}",
            epoch + 1
        );
    }
    assert!(
        local.gathered_rows < local.full_rows,
        "batch-local mode must gather strictly fewer rows than the full graph \
         ({} vs {})",
        local.gathered_rows,
        local.full_rows
    );
    assert!(
        local.gathered_edges < local.full_edges,
        "batch-local mode must propagate strictly fewer edges than the full graph \
         ({} vs {})",
        local.gathered_edges,
        local.full_edges
    );
}

/// One replica count's aggregate over the sweep's epochs.
struct ReplicaRun {
    r: usize,
    wall_ns: u64,
    reduce_ns: u64,
    extract_ns: u64,
    extract_wall_ns: u64,
    extract_wait_ns: u64,
    hub_cache_ns: u64,
    losses: Vec<f32>,
}

/// Aggregate extraction CPU may grow at most this much from `R = 1` to
/// the largest swept replica count. Extraction is shared per macro-step
/// (one union traversal regardless of `R`), so the aggregate cost is
/// structurally flat; the headroom absorbs timer noise on short runs.
const EXTRACT_CPU_RTOL: f64 = 1.3;

/// Train the macro-step path at every replica count in `{1,2,4,8} ∩
/// [1, max_r]`, assert bitwise-identical loss trajectories, report
/// wall-clock scaling, and merge a record into
/// `BENCH_ckat_replicas.json`.
fn run_replica_sweep(
    opts: &HarnessOpts,
    name: &str,
    exp: &Experiment,
    epochs: usize,
    max_r: usize,
    profile_batch: usize,
) {
    let ctx = exp.ctx();
    let sweep: Vec<usize> = [1usize, 2, 4, 8].into_iter().filter(|&r| r <= max_r).collect();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!(
        "== replica sweep on {name}: R in {sweep:?}, {cores} cores, \
         macro width {MACRO_WIDTH}, {epochs} epochs each =="
    );

    let mut runs: Vec<ReplicaRun> = Vec::new();
    let mut hub_entities = 0usize;
    for &r in &sweep {
        let mut cfg = opts.ckat_config();
        cfg.batch_local = true;
        cfg.base.batch_size = profile_batch;
        // No dropout, as in the mode comparison: keeps the per-epoch loss a
        // pure function of the seed so the cross-R bitwise gate is strict.
        cfg.base.keep_prob = 1.0;
        let d = cfg.base.embed_dim;
        cfg.layer_dims = vec![d, d / 2];
        cfg.base.replicas = r;
        let mut model = Ckat::new(&ctx, &cfg);
        let mut rng = seeded_rng(opts.seed);
        let mut run = ReplicaRun {
            r,
            wall_ns: 0,
            reduce_ns: 0,
            extract_ns: 0,
            extract_wall_ns: 0,
            extract_wait_ns: 0,
            hub_cache_ns: 0,
            losses: Vec::with_capacity(epochs),
        };
        if r == sweep[0] {
            hub_entities = model.hub_count();
            eprintln!("  hub cache: {hub_entities} hub entities");
        }
        for epoch in 1..=epochs {
            let loss = model.train_epoch(&ctx, &mut rng);
            let p = model.take_epoch_profile().expect("CKAT records profiles");
            eprintln!(
                "  R={r} epoch {epoch}: loss {loss:.4}, wall {:.1} ms \
                 (reduce {:.1} ms, extract {:.1} ms CPU / {:.1} ms wall, \
                 hub cache {:.1} ms)",
                p.wall_ns as f64 / 1e6,
                p.reduce_ns as f64 / 1e6,
                p.extract_ns as f64 / 1e6,
                p.extract_wall_ns as f64 / 1e6,
                p.hub_cache_ns as f64 / 1e6,
            );
            run.losses.push(loss);
            run.wall_ns += p.wall_ns;
            run.reduce_ns += p.reduce_ns;
            run.extract_ns += p.extract_ns;
            run.extract_wall_ns += p.extract_wall_ns;
            run.extract_wait_ns += p.extract_wait_ns;
            run.hub_cache_ns += p.hub_cache_ns;
        }
        runs.push(run);
    }

    // Determinism gate: every replica count reproduces R=1's loss
    // trajectory bit for bit.
    let reference = &runs[0];
    assert_eq!(reference.r, 1, "sweep always includes R=1");
    for run in &runs[1..] {
        for (epoch, (a, b)) in reference.losses.iter().zip(&run.losses).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "epoch {} loss diverged: R=1 got {a}, R={} got {b}",
                epoch + 1,
                run.r
            );
        }
    }

    // Scaling-regression gate: one union traversal serves the whole
    // macro-step, so aggregate extraction CPU must stay flat in R instead
    // of growing with the replica count as it did when every micro-batch
    // re-extracted its own receptive field.
    for run in &runs[1..] {
        let ratio = run.extract_ns as f64 / reference.extract_ns.max(1) as f64;
        assert!(
            ratio <= EXTRACT_CPU_RTOL,
            "aggregate extraction CPU regressed with replica count: R={} spent {:.2}x \
             the R=1 extraction CPU (gate {EXTRACT_CPU_RTOL}x)",
            run.r,
            ratio
        );
    }

    let speedup = |run: &ReplicaRun| reference.wall_ns as f64 / run.wall_ns.max(1) as f64;
    let run_fields = runs
        .iter()
        .map(|run| {
            format!(
                concat!(
                    "{{\"r\": {}, \"wall_ns\": {}, \"reduce_ns\": {}, ",
                    "\"extract_ns\": {}, \"extract_wall_ns\": {}, ",
                    "\"extract_wait_ns\": {}, \"hub_cache_ns\": {}, ",
                    "\"final_loss\": {:.6}, \"speedup_vs_r1\": {:.3}}}"
                ),
                run.r,
                run.wall_ns,
                run.reduce_ns,
                run.extract_ns,
                run.extract_wall_ns,
                run.extract_wait_ns,
                run.hub_cache_ns,
                run.losses.last().copied().unwrap_or(f32::NAN),
                speedup(run),
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let record = format!(
        concat!(
            "{{\"facility\": \"{}\", \"profile\": \"{}\", \"seed\": {}, ",
            "\"cores\": {}, \"n_entities\": {}, \"n_edges\": {}, ",
            "\"epochs\": {}, \"macro_width\": {}, \"hub_entities\": {}, ",
            "\"losses_bitwise_equal\": true, ",
            "\"runs\": [{}]}}"
        ),
        name,
        format!("{:?}", opts.profile).to_lowercase(),
        opts.seed,
        cores,
        exp.ckg.n_entities(),
        exp.ckg.n_edges(),
        epochs,
        MACRO_WIDTH,
        hub_entities,
        run_fields,
    );
    merge_replica_records("BENCH_ckat_replicas.json", name, record);

    for run in &runs[1..] {
        println!(
            "R={}: {:.2}x wall-clock vs R=1 ({:.1} ms -> {:.1} ms), losses bitwise equal",
            run.r,
            speedup(run),
            reference.wall_ns as f64 / 1e6,
            run.wall_ns as f64 / 1e6,
        );
    }
    println!("-> BENCH_ckat_replicas.json ({name})");

    // The scaling gate only means something with real cores under the
    // pool and enough work per macro-step to amortize the fold; elsewhere
    // the sweep still proves determinism and records honest numbers.
    if let Some(r4) = runs.iter().find(|run| run.r == 4) {
        if cores >= 4 && opts.profile == Profile::Huge {
            let s = speedup(r4);
            assert!(
                s > 1.5,
                "replica pool must beat 1.5x at R=4 on the huge world with {cores} cores \
                 (got {s:.2}x)"
            );
        } else {
            eprintln!(
                "speedup gate skipped: {cores} cores, {:?} profile (needs >= 4 cores and --huge)",
                opts.profile
            );
        }
    }
}

/// Merge `record` into the JSON-array file at `path`, replacing any
/// previous record for the same facility (records are one line each, so
/// the file stays diffable as history accumulates).
fn merge_replica_records(path: &str, facility: &str, record: String) {
    let needle = format!("\"facility\": \"{facility}\"");
    let mut records: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let t = line.trim().trim_end_matches(',');
            if t.starts_with('{') && !t.contains(&needle) {
                records.push(t.to_string());
            }
        }
    }
    records.push(record);
    let body = records.iter().map(|r| format!("  {r}")).collect::<Vec<_>>().join(",\n");
    std::fs::write(path, format!("[\n{body}\n]\n")).unwrap_or_else(|e| {
        panic!("write {path}: {e}");
    });
}
