//! Regenerate **Figure 5** — the probability that two users share a query
//! pattern (same modal instrument region / same modal data domain), for
//! same-city pairs vs randomly sampled pairs, with the likelihood ratios
//! the paper reports (OOI: 79.8× region, 29.8× domain; GAGE: 22.87× /
//! 2.21×).

use facility_bench::HarnessOpts;
use facility_ckat::report::format_table;
use facility_datagen::{stats, Trace};

fn main() {
    let opts = HarnessOpts::from_args();
    let n_pairs = 10_000; // same as the paper's experiment
    let paper = [(79.8, 29.8), (22.87, 2.21)];

    let mut rows = Vec::new();
    for (i, (name, facility)) in opts.facilities().into_iter().enumerate() {
        let trace = Trace::generate(&facility, opts.seed);
        let mut rng = facility_linalg::seeded_rng(opts.seed ^ 0xf165);
        let pa = stats::pair_affinity(&trace, n_pairs, &mut rng);
        let (paper_region, paper_type) = paper[i.min(1)];
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", pa.same_city_region),
            format!("{:.4}", pa.random_region),
            format!("{:.2}x", pa.region_ratio()),
            format!("{:.4}", pa.same_city_type),
            format!("{:.4}", pa.random_type),
            format!("{:.2}x", pa.type_ratio()),
            format!("{paper_region:.2}x / {paper_type:.2}x"),
        ]);
    }

    println!("Figure 5 — same-city vs random user-pair query-pattern agreement\n");
    println!(
        "{}",
        format_table(
            &[
                "facility",
                "P(region|city)",
                "P(region|rand)",
                "region ratio",
                "P(domain|city)",
                "P(domain|rand)",
                "domain ratio",
                "paper ratios"
            ],
            &rows
        )
    );
}
