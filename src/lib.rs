#![warn(missing_docs)]

//! # facility-kgrec
//!
//! Root facade crate: re-exports every crate in the workspace so examples
//! and downstream users can depend on a single package.
//!
//! See `DESIGN.md` for the system inventory and `README.md` for a
//! quickstart. The primary contribution (the CKAT recommendation model and
//! the end-to-end pipeline) lives in [`ckat`].

pub use facility_autograd as autograd;
pub use facility_ckat as ckat;
pub use facility_ckpt as ckpt;
pub use facility_datagen as datagen;
pub use facility_eval as eval;
pub use facility_kg as kg;
pub use facility_linalg as linalg;
pub use facility_models as models;
pub use facility_serve as serve;
pub use facility_tsne as tsne;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use facility_linalg::{seeded_rng, Matrix};
}
