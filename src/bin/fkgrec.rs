//! `fkgrec` — command-line interface for facility knowledge-network
//! recommendations.
//!
//! ```text
//! fkgrec simulate  --facility ooi|gage|tiny --seed N --out DIR
//! fkgrec stats     --trace DIR
//! fkgrec train     --trace DIR --model ckat [--epochs N] [--k N] [--mask MASK]
//!                  [--checkpoint DIR [--ckpt-every N] [--resume]]
//! fkgrec recommend --trace DIR --model ckat --user N [--top N] [--epochs N]
//! fkgrec compare   --trace DIR [--epochs N] [--k N]
//! ```
//!
//! `MASK` is a `+`-separated subset of `uug`, `loc`, `dkg`, `md` (UIG is
//! always included); default `uug+loc+dkg`.
//!
//! Fault tolerance: `--lenient N` skips up to `N` malformed trace rows
//! (`--verbose` prints the per-file skip summary), `--checkpoint DIR`
//! writes periodic training checkpoints, and `--resume` continues from the
//! latest one after an interruption. `^C`/`SIGTERM` during `train` stops at
//! the next epoch boundary and writes a final checkpoint (defaulting to
//! `<trace>/checkpoints` when `--checkpoint` is absent) so the run resumes
//! bitwise-identically. Read and checkpoint failures exit with code 1 and
//! a friendly message, never a panic backtrace.

use facility_kgrec::ckat::{recommend_top_k, report, Experiment, ExperimentConfig};
use facility_kgrec::datagen::{io as trace_io, stats, FacilityConfig, ReadMode, Trace};
use facility_kgrec::eval::{install_ctrl_c, latest_checkpoint, train, TrainSettings};
use facility_kgrec::kg::{CkgStats, SourceMask};
use facility_kgrec::models::{ModelConfig, ModelKind, TrainContext};
use facility_kgrec::prelude::seeded_rng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage("missing command");
    };
    let opts = parse_flags(rest);
    match cmd.as_str() {
        "simulate" => cmd_simulate(&opts),
        "stats" => cmd_stats(&opts),
        "train" => cmd_train(&opts),
        "recommend" => cmd_recommend(&opts),
        "compare" => cmd_compare(&opts),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command `{other}`")),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "fkgrec — facility knowledge-network recommendations\n\n\
         commands:\n\
           simulate  --facility ooi|gage|tiny --seed N --out DIR\n\
           stats     --trace DIR\n\
           train     --trace DIR --model NAME [--epochs N] [--k N] [--mask MASK]\n\
                     [--checkpoint DIR [--ckpt-every N] [--resume]]\n\
           recommend --trace DIR --model NAME --user N [--top N] [--epochs N]\n\
           compare   --trace DIR [--epochs N] [--k N]\n\n\
         models: bprmf fm nfm cke cfkg ripplenet kgcn ckat\n\
         MASK: '+'-separated subset of uug,loc,dkg,md (default uug+loc+dkg)\n\n\
         fault tolerance:\n\
           --lenient N       skip up to N malformed trace rows instead of failing\n\
           --verbose         print the lenient-mode skip summary (and extra detail)\n\
           --checkpoint DIR  write periodic training checkpoints into DIR\n\
           --ckpt-every N    checkpoint cadence in epochs (default 5)\n\
           --resume          continue from the latest checkpoint in --checkpoint DIR\n\
           --max-retries N   divergence rollback budget (default 2)\n\
           ^C / SIGTERM      train stops at the next epoch boundary and writes a\n\
                             final checkpoint (default dir: <trace>/checkpoints)"
    );
    exit(if err.is_empty() { 0 } else { 2 })
}

/// Exit with a one-line friendly message and code 1 (read/checkpoint
/// failures must never surface as panic backtraces).
fn fail(msg: &dyn std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    exit(1)
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["resume", "verbose"];

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            usage(&format!("expected a --flag, got `{flag}`"));
        };
        if BOOL_FLAGS.contains(&key) {
            map.insert(key.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            usage(&format!("--{key} needs a value"));
        };
        map.insert(key.to_string(), value.clone());
    }
    map
}

fn flag_set(opts: &HashMap<String, String>, key: &str) -> bool {
    opts.contains_key(key)
}

fn get<'a>(opts: &'a HashMap<String, String>, key: &str) -> &'a str {
    opts.get(key).unwrap_or_else(|| usage(&format!("missing --{key}"))).as_str()
}

fn get_or<'a>(opts: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    opts.get(key).map(String::as_str).unwrap_or(default)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| usage(&format!("bad {what}: `{s}`")))
}

fn parse_mask(s: &str) -> SourceMask {
    let mut mask = SourceMask { uug: false, loc: false, dkg: false, md: false };
    for part in s.split('+').filter(|p| !p.is_empty() && *p != "uig") {
        match part {
            "uug" => mask.uug = true,
            "loc" => mask.loc = true,
            "dkg" => mask.dkg = true,
            "md" => mask.md = true,
            other => usage(&format!("unknown knowledge source `{other}`")),
        }
    }
    mask
}

fn parse_model(s: &str) -> ModelKind {
    match s.to_lowercase().as_str() {
        "bprmf" => ModelKind::Bprmf,
        "fm" => ModelKind::Fm,
        "nfm" => ModelKind::Nfm,
        "cke" => ModelKind::Cke,
        "cfkg" => ModelKind::Cfkg,
        "ripplenet" => ModelKind::RippleNet,
        "kgcn" => ModelKind::Kgcn,
        "ckat" => ModelKind::Ckat,
        other => usage(&format!("unknown model `{other}`")),
    }
}

fn load_trace(opts: &HashMap<String, String>) -> Trace {
    let dir = PathBuf::from(get(opts, "trace"));
    let mode = match opts.get("lenient") {
        Some(n) => ReadMode::Lenient { max_bad_rows: parse_num(n, "--lenient") },
        None => ReadMode::Strict,
    };
    match trace_io::read_trace_with(&dir, mode) {
        Ok((trace, summary)) => {
            if !summary.is_clean() && flag_set(opts, "verbose") {
                eprintln!("{summary}");
            }
            trace
        }
        Err(e) => fail(&format_args!("failed to read trace at {}: {e}", dir.display())),
    }
}

/// Build an `Experiment` around an already-loaded trace.
fn experiment_from(trace: Trace, mask: SourceMask, seed: u64) -> Experiment {
    let mut rng = seeded_rng(seed ^ 0x517);
    let inter = trace.split_interactions(0.2, &mut rng);
    let mut builder = trace.ckg_builder(4);
    builder.add_interactions(&inter.train_pairs);
    let ckg = builder.build(mask);
    Experiment {
        config: ExperimentConfig {
            facility: trace.config.clone(),
            seed,
            test_frac: 0.2,
            mask,
            uug_pairs_per_city: 4,
        },
        trace,
        inter,
        ckg,
    }
}

fn settings(opts: &HashMap<String, String>) -> TrainSettings {
    let ckpt_dir = opts.get("checkpoint").map(PathBuf::from);
    TrainSettings {
        max_epochs: parse_num(get_or(opts, "epochs", "40"), "--epochs"),
        eval_every: 5,
        patience: 3,
        k: parse_num(get_or(opts, "k", "20"), "--k"),
        seed: parse_num(get_or(opts, "seed", "7"), "--seed"),
        verbose: true,
        ckpt_every: if ckpt_dir.is_some() {
            parse_num(get_or(opts, "ckpt-every", "5"), "--ckpt-every")
        } else {
            0
        },
        ckpt_dir,
        max_retries: parse_num(get_or(opts, "max-retries", "2"), "--max-retries"),
        lr_backoff: 0.5,
        stop: None,
    }
}

fn cmd_simulate(opts: &HashMap<String, String>) {
    let facility = match get(opts, "facility") {
        "ooi" => FacilityConfig::ooi(),
        "gage" => FacilityConfig::gage(),
        "tiny" => FacilityConfig::tiny(),
        other => usage(&format!("unknown facility `{other}` (ooi|gage|tiny)")),
    };
    let seed: u64 = parse_num(get_or(opts, "seed", "42"), "--seed");
    let out = PathBuf::from(get(opts, "out"));
    let trace = Trace::generate(&facility, seed);
    trace_io::write_trace(&trace, &out).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", out.display());
        exit(1)
    });
    println!(
        "wrote {} ({} users, {} items, {} events) to {}",
        facility.name,
        facility.n_users,
        facility.n_items,
        trace.n_events(),
        out.display()
    );
}

fn cmd_stats(opts: &HashMap<String, String>) {
    let trace = load_trace(opts);
    let exp = experiment_from(trace, SourceMask::all(), 42);
    println!("facility: {}", exp.trace.config.name);
    println!("{}", CkgStats::of(&exp.ckg));
    let (region_share, type_share) = stats::affinity_shares(&exp.trace);
    println!("locality share  {:.1}%", region_share * 100.0);
    println!("data-type share {:.1}%", type_share * 100.0);
    let pa = stats::pair_affinity(&exp.trace, 10_000, &mut seeded_rng(7));
    println!(
        "same-city pattern ratios: locality {:.1}x, domain {:.1}x",
        pa.region_ratio(),
        pa.type_ratio()
    );
    println!(
        "interactions: {} train / {} test ({} evaluable users)",
        exp.inter.n_train(),
        exp.inter.n_test(),
        exp.inter.test_users().len()
    );
}

fn cmd_train(opts: &HashMap<String, String>) {
    let kind = parse_model(get(opts, "model"));
    let mask = parse_mask(get_or(opts, "mask", "uug+loc+dkg"));
    let trace = load_trace(opts);
    let exp = experiment_from(trace, mask, 42);
    let mut s = settings(opts);
    // An interrupted run should always leave something to resume from:
    // without --checkpoint, the final interrupt-time checkpoint (and
    // --resume) default to `<trace>/checkpoints`. Periodic cadence stays
    // off unless --checkpoint/--ckpt-every asked for it.
    if s.ckpt_dir.is_none() {
        s.ckpt_dir = Some(PathBuf::from(get(opts, "trace")).join("checkpoints"));
    }
    // ^C / SIGTERM stops at the next epoch boundary with a final
    // checkpoint instead of killing the process mid-epoch.
    s.stop = Some(install_ctrl_c());
    let model_config = ModelConfig::default();
    let ckpt_dir = s.ckpt_dir.clone().unwrap_or_default();
    let run = if flag_set(opts, "resume") {
        let Some(ckpt) = latest_checkpoint(&ckpt_dir) else {
            fail(&format_args!("no checkpoint found in {}", ckpt_dir.display()));
        };
        eprintln!("resuming from {}", ckpt.display());
        exp.resume_model(kind, &model_config, &s, &ckpt)
    } else {
        exp.try_run_model(kind, &model_config, &s)
    };
    let report = run.unwrap_or_else(|e| fail(&e));
    if report.interrupted {
        eprintln!(
            "interrupted — final checkpoint saved; resume with:\n  \
             fkgrec train --trace {} --model {} --checkpoint {} --resume",
            get(opts, "trace"),
            get(opts, "model"),
            ckpt_dir.display()
        );
    }
    if !report.divergences.is_empty() {
        eprintln!(
            "recovered from {} divergence(s) via rollback + lr backoff",
            report.divergences.len()
        );
    }
    println!(
        "\n{} on {} [{}]: recall@{} {:.4}, ndcg@{} {:.4} (best epoch {})",
        kind.label(),
        exp.trace.config.name,
        mask.label(),
        s.k,
        report.best.recall,
        s.k,
        report.best.ndcg,
        report.best_epoch
    );
    if flag_set(opts, "verbose") {
        println!("\nrun ledger row (EXPERIMENTS.md):");
        println!("{}", report::RUN_SUMMARY_HEADER);
        println!("{}", report::run_summary_row(&report));
    }
}

fn cmd_recommend(opts: &HashMap<String, String>) {
    let kind = parse_model(get(opts, "model"));
    let user: u32 = parse_num(get(opts, "user"), "--user");
    let top: usize = parse_num(get_or(opts, "top", "10"), "--top");
    let trace = load_trace(opts);
    let exp = experiment_from(trace, SourceMask::all(), 42);
    if user as usize >= exp.inter.n_users {
        usage(&format!("user {user} out of range (facility has {})", exp.inter.n_users));
    }
    let s = settings(opts);
    let model = exp.train_recommender(kind, &ModelConfig::default(), &s);
    let meta = &exp.trace.population.users[user as usize];
    println!(
        "\nuser {user}: org {}, city {}, home site {}, preferred types {:?}",
        meta.org, meta.city, meta.home_site, meta.pref_types
    );
    println!("top-{top} recommendations from {}:", kind.label());
    for (item, score) in recommend_top_k(model.as_ref(), &exp.inter, user, top) {
        let m = &exp.trace.catalog.items[item as usize];
        println!(
            "  item {item:5}  score {score:8.3}  site {:3} region {:2} type {:2} discipline {}",
            m.site, m.region, m.data_type, m.discipline
        );
    }
}

fn cmd_compare(opts: &HashMap<String, String>) {
    let trace = load_trace(opts);
    let exp = experiment_from(trace, SourceMask::all(), 42);
    let s = settings(opts);
    println!("model       recall@{}  ndcg@{}", s.k, s.k);
    println!("----------  ---------  -------");
    for kind in ModelKind::table2_order() {
        let ctx: TrainContext<'_> = exp.ctx();
        let mut model = kind.build(&ctx, &ModelConfig::default());
        let mut quiet = s.clone();
        quiet.verbose = false;
        let report = train(model.as_mut(), &ctx, &quiet);
        println!("{:<10}  {:.4}     {:.4}", kind.label(), report.best.recall, report.best.ndcg);
    }
}
