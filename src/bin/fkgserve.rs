//! `fkgserve` — fault-tolerant online serving bench for facility
//! discovery recommendations.
//!
//! ```text
//! fkgserve bench --facility ooi|gage|tiny [--seed N] [--model NAME]
//!                [--epochs N] [--requests N] [--workers N] [--queue N]
//!                [--deadline-us N] [--k N] [--concurrency N]
//!                [--snapshot-dir DIR] [--out FILE]
//! fkgserve bench --trace DIR [...]
//! ```
//!
//! `bench` trains a model on the facility trace, freezes two serving
//! snapshots (an early one and a later one, for the hot-swap scenario),
//! then replays the heavy-tailed trace against a fresh server under a
//! suite of scenarios — healthy, latency spikes, injected worker panics,
//! open-loop overload, a mid-load hot swap, and a mid-load *corrupt* swap
//! — writing per-scenario latency/QPS/shed/rung numbers to
//! `BENCH_serve.json`.
//!
//! The bench gates itself: any silent drop, a healthy run without exact
//! responses, or a corrupt snapshot reaching the scoring path exits
//! nonzero, so CI can run it as a robustness smoke test.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;

use facility_kgrec::datagen::{io as trace_io, FacilityConfig, ReadMode, Trace};
use facility_kgrec::kg::{Interactions, SourceMask};
use facility_kgrec::models::{ModelConfig, ModelKind, Recommender, TrainContext};
use facility_kgrec::prelude::seeded_rng;
use facility_kgrec::serve::{
    drive_closed_loop, drive_closed_loop_with, drive_open_loop, load_snapshot_with_retry,
    DeadlinePolicy, DriveReport, Engine, FaultConfig, FaultPlan, ModelSnapshot, RealClock,
    RetryPolicy, ScenarioStats, Server, ServerConfig, SnapshotStore,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage("missing command");
    };
    let opts = parse_flags(rest);
    match cmd.as_str() {
        "bench" => cmd_bench(&opts),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command `{other}`")),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "fkgserve — fault-tolerant online serving bench\n\n\
         commands:\n\
           bench  --facility ooi|gage|tiny | --trace DIR\n\
                  [--seed N]          world + fault seed (default 42)\n\
                  [--model NAME]      bprmf|cke|ckat (default bprmf)\n\
                  [--epochs N]        training epochs before snapshot A (default 3)\n\
                  [--requests N]      submissions per scenario (default 400)\n\
                  [--workers N]       serving worker threads (default 2)\n\
                  [--queue N]         bounded admission queue depth (default 32)\n\
                  [--deadline-us N]   per-request budget in µs (default 500)\n\
                  [--k N]             items per response (default 20)\n\
                  [--batch N]         max requests per micro-batched scan (default 8)\n\
                  [--batch-slack-us N] wall-clock wait to top up a short batch (default 0)\n\
                  [--concurrency N]   closed-loop in-flight window (default 2×workers)\n\
                  [--snapshot-dir DIR] where snapshot files go (default target/fkgserve)\n\
                  [--out FILE]        report path (default BENCH_serve.json)\n\n\
         only models with cached dot-product representations can serve\n\
         (bprmf, cke, ckat); exit code is nonzero if any robustness\n\
         invariant breaks mid-bench."
    );
    exit(if err.is_empty() { 0 } else { 2 })
}

/// Exit with a one-line friendly message and code 1 — serving-bench
/// failures must never surface as panic backtraces.
fn fail(msg: &dyn std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    exit(1)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            usage(&format!("expected a --flag, got `{flag}`"));
        };
        let Some(value) = it.next() else {
            usage(&format!("--{key} needs a value"));
        };
        map.insert(key.to_string(), value.clone());
    }
    map
}

fn get_or<'a>(opts: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    opts.get(key).map(String::as_str).unwrap_or(default)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| usage(&format!("bad {what}: `{s}`")))
}

/// Everything one scenario needs to build a fresh server.
struct BenchWorld {
    trace: Trace,
    inter: Interactions,
    snap_a_path: PathBuf,
    snap_b_path: PathBuf,
    corrupt_paths: Vec<PathBuf>,
    policy: DeadlinePolicy,
    server_cfg: ServerConfig,
    seed: u64,
}

impl BenchWorld {
    /// Fresh server for one scenario: the snapshot is re-loaded from disk
    /// through the full verification + retry path every time.
    fn server(&self, faults: FaultConfig, cfg: &ServerConfig) -> Server {
        let clock: Arc<RealClock> = Arc::new(RealClock::new());
        let snap = load_snapshot_with_retry(&self.snap_a_path, &RetryPolicy::default(), &*clock)
            .unwrap_or_else(|e| fail(&e));
        let store = Arc::new(SnapshotStore::new(snap));
        let train = Arc::new(self.inter.train.clone());
        let engine = Engine::new(store, train, self.policy, FaultPlan::new(faults), clock);
        Server::start(engine, cfg)
    }

    fn healthy_faults(&self) -> FaultConfig {
        FaultConfig {
            seed: self.seed,
            latency_spike_prob: 0.0,
            latency_spike_ns: 0,
            panic_prob: 0.0,
        }
    }
}

fn cmd_bench(opts: &HashMap<String, String>) {
    let seed: u64 = parse_num(get_or(opts, "seed", "42"), "--seed");
    let model_name = get_or(opts, "model", "bprmf");
    let kind = match model_name {
        "bprmf" => ModelKind::Bprmf,
        "cke" => ModelKind::Cke,
        "ckat" => ModelKind::Ckat,
        other => usage(&format!("model `{other}` cannot serve (needs dot-product reprs)")),
    };
    let epochs: usize = parse_num(get_or(opts, "epochs", "3"), "--epochs");
    let requests: usize = parse_num(get_or(opts, "requests", "400"), "--requests");
    let workers: usize = parse_num(get_or(opts, "workers", "2"), "--workers");
    let queue: usize = parse_num(get_or(opts, "queue", "32"), "--queue");
    let deadline_us: u64 = parse_num(get_or(opts, "deadline-us", "500"), "--deadline-us");
    let k: usize = parse_num(get_or(opts, "k", "20"), "--k");
    let max_batch: usize = parse_num(get_or(opts, "batch", "8"), "--batch");
    let batch_slack_us: u64 = parse_num(get_or(opts, "batch-slack-us", "0"), "--batch-slack-us");
    let default_conc = (workers * 2).to_string();
    let concurrency: usize = parse_num(get_or(opts, "concurrency", &default_conc), "--concurrency");
    let snap_dir = PathBuf::from(get_or(opts, "snapshot-dir", "target/fkgserve"));
    let out = PathBuf::from(get_or(opts, "out", "BENCH_serve.json"));

    // --- world ---
    let trace = match opts.get("trace") {
        Some(dir) => match trace_io::read_trace_with(Path::new(dir), ReadMode::Strict) {
            Ok((trace, _)) => trace,
            Err(e) => fail(&format_args!("failed to read trace at {dir}: {e}")),
        },
        None => {
            let facility = match get_or(opts, "facility", "tiny") {
                "ooi" => FacilityConfig::ooi(),
                "gage" => FacilityConfig::gage(),
                "tiny" => FacilityConfig::tiny(),
                other => usage(&format!("unknown facility `{other}` (ooi|gage|tiny)")),
            };
            Trace::generate(&facility, seed)
        }
    };
    let mut rng = seeded_rng(seed ^ 0x517);
    let inter = trace.split_interactions(0.2, &mut rng);
    let mut builder = trace.ckg_builder(4);
    builder.add_interactions(&inter.train_pairs);
    let ckg = builder.build(SourceMask::all());
    let ctx = TrainContext { inter: &inter, ckg: &ckg };

    // --- train + freeze two snapshots ---
    eprintln!(
        "training {model_name} on {} ({} users, {} items) for {epochs}+2 epochs…",
        trace.config.name, inter.n_users, inter.n_items
    );
    let mut model = kind.build(&ctx, &ModelConfig::fast());
    let mut train_rng = seeded_rng(seed);
    for _ in 0..epochs {
        model.train_epoch(&ctx, &mut train_rng);
    }
    let snap_a = freeze(model.as_mut(), &ctx, &inter, epochs as u64);
    for _ in 0..2 {
        model.train_epoch(&ctx, &mut train_rng);
    }
    let snap_b = freeze(model.as_mut(), &ctx, &inter, epochs as u64 + 2);

    std::fs::create_dir_all(&snap_dir)
        .unwrap_or_else(|e| fail(&format_args!("cannot create {}: {e}", snap_dir.display())));
    let snap_a_path = snap_dir.join("snapshot_a.fks");
    let snap_b_path = snap_dir.join("snapshot_b.fks");
    snap_a.save(&snap_a_path).unwrap_or_else(|e| fail(&e));
    snap_b.save(&snap_b_path).unwrap_or_else(|e| fail(&e));

    // Corrupted siblings of snapshot A for the corrupt-swap scenario.
    let truncated = snap_dir.join("snapshot_truncated.fks");
    let flipped = snap_dir.join("snapshot_flipped.fks");
    let future = snap_dir.join("snapshot_future_version.fks");
    facility_kgrec::serve::corrupt_truncate(&snap_a_path, &truncated, 64)
        .unwrap_or_else(|e| fail(&e));
    facility_kgrec::serve::corrupt_flip_byte(&snap_a_path, &flipped, 200)
        .unwrap_or_else(|e| fail(&e));
    facility_kgrec::serve::corrupt_version(&snap_a_path, &future).unwrap_or_else(|e| fail(&e));

    let world = BenchWorld {
        trace,
        inter,
        snap_a_path,
        snap_b_path,
        corrupt_paths: vec![truncated, flipped, future],
        policy: DeadlinePolicy { deadline_ns: deadline_us * 1_000, k },
        server_cfg: ServerConfig { workers, queue_capacity: queue, max_batch, batch_slack_us },
        seed,
    };

    // --- scenarios ---
    let mut scenarios: Vec<ScenarioStats> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let users = facility_kgrec::serve::replay_users(&world.trace, requests);
    if users.is_empty() {
        fail(&"trace has no events to replay");
    }

    // A panic inside a worker is injected and absorbed by design; keep the
    // default hook from spraying backtraces over the bench output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let base_cfg = world.server_cfg;
    scenarios.push(run_scenario("healthy", &world, world.healthy_faults(), &base_cfg, |server| {
        drive_closed_loop(server, &users, concurrency)
    }));

    scenarios.push(run_scenario(
        "latency_spikes",
        &world,
        FaultConfig {
            seed: seed ^ 1,
            latency_spike_prob: 0.30,
            latency_spike_ns: 4 * deadline_us * 1_000,
            panic_prob: 0.0,
        },
        &base_cfg,
        |server| drive_closed_loop(server, &users, concurrency),
    ));

    scenarios.push(run_scenario(
        "worker_panics",
        &world,
        FaultConfig {
            seed: seed ^ 2,
            latency_spike_prob: 0.0,
            latency_spike_ns: 0,
            panic_prob: 0.05,
        },
        &base_cfg,
        |server| drive_closed_loop(server, &users, concurrency),
    ));

    scenarios.push(run_scenario(
        "open_loop_paced",
        &world,
        FaultConfig {
            seed: seed ^ 3,
            latency_spike_prob: 0.50,
            latency_spike_ns: 2 * deadline_us * 1_000,
            panic_prob: 0.0,
        },
        &base_cfg,
        |server| drive_open_loop(server, &users, (deadline_us * 1_000) / 8),
    ));

    // Arrivals paced faster than a single spiking worker behind a
    // deliberately tiny queue can drain: admission control must shed the
    // overflow structurally.
    scenarios.push(run_scenario(
        "overload_shed",
        &world,
        FaultConfig {
            seed: seed ^ 4,
            latency_spike_prob: 0.6,
            latency_spike_ns: 4 * deadline_us * 1_000,
            panic_prob: 0.0,
        },
        &ServerConfig { workers: 1, queue_capacity: queue.min(4), max_batch, batch_slack_us },
        |server| drive_open_loop(server, &users, (deadline_us * 1_000) / 8),
    ));

    scenarios.push(run_scenario("hot_swap", &world, world.healthy_faults(), &base_cfg, |server| {
        let store = Arc::clone(server.engine().store());
        let swap_at = users.len() / 2;
        let path = world.snap_b_path.clone();
        drive_closed_loop_with(server, &users, concurrency, move |i| {
            if i == swap_at {
                store
                    .swap_verified_from(&path, &RetryPolicy::default(), &RealClock::new())
                    .unwrap_or_else(|e| fail(&e));
            }
        })
    }));

    scenarios.push(run_scenario(
        "corrupt_swap",
        &world,
        world.healthy_faults(),
        &base_cfg,
        |server| {
            let store = Arc::clone(server.engine().store());
            let swap_at = users.len() / 2;
            let paths = world.corrupt_paths.clone();
            drive_closed_loop_with(server, &users, concurrency, move |i| {
                if i == swap_at {
                    for p in &paths {
                        let swapped =
                            store.swap_verified_from(p, &RetryPolicy::default(), &RealClock::new());
                        if swapped.is_ok() {
                            fail(&format_args!("corrupt snapshot {} was accepted", p.display()));
                        }
                    }
                }
            })
        },
    ));

    std::panic::set_hook(prev_hook);

    // --- gate ---
    for s in &scenarios {
        if s.silent_drops != 0 {
            violations.push(format!("{}: {} silent drops", s.name, s.silent_drops));
        }
        if s.submitted != s.served + s.rejected + s.silent_drops.unsigned_abs() {
            violations.push(format!(
                "{}: accounting broke ({} submitted != {} served + {} rejected)",
                s.name, s.submitted, s.served, s.rejected
            ));
        }
    }
    if let Some(h) = scenarios.iter().find(|s| s.name == "healthy") {
        if h.rung_counts.0 == 0 {
            violations.push("healthy: no exact-rung responses at all".into());
        }
    }
    // Kernel exactness: the exact rung the healthy scenario served must
    // rank bitwise-identically to the scalar differential oracle (the
    // lane-fold determinism contract of `facility_linalg::kernels`).
    {
        let snap = load_snapshot_with_retry(
            &world.snap_a_path,
            &RetryPolicy::default(),
            &RealClock::new(),
        )
        .unwrap_or_else(|e| fail(&e));
        let mut checked = 0usize;
        for &u in users.iter().take(64) {
            let fast = snap.score_user(u);
            let oracle = snap.score_user_scalar_oracle(u);
            if fast.len() != oracle.len()
                || fast.iter().zip(&oracle).any(|(a, b)| a.to_bits() != b.to_bits())
            {
                violations.push(format!(
                    "healthy: kernel scores for user {u} diverge from scalar oracle"
                ));
                break;
            }
            if snap.rank_top_k(u, &[], world.policy.k)
                != facility_kgrec::eval::rank_top_k(&oracle, &[], world.policy.k)
            {
                violations
                    .push(format!("healthy: top-k for user {u} diverges from the scalar oracle"));
                break;
            }
            checked += 1;
        }
        eprintln!("kernel exactness: {checked} users ranked bitwise-equal to the scalar oracle");
    }
    if let Some(o) = scenarios.iter().find(|s| s.name == "overload_shed") {
        if o.rejected == 0 {
            violations.push("overload_shed: burst overload never shed".into());
        }
    }
    if let Some(c) = scenarios.iter().find(|s| s.name == "corrupt_swap") {
        if c.rejected_swaps != 3 || c.versions_served != vec![1] {
            violations.push(format!(
                "corrupt_swap: expected 3 rejected swaps and only version 1 serving, got {} and {:?}",
                c.rejected_swaps, c.versions_served
            ));
        }
    }
    if let Some(h) = scenarios.iter().find(|s| s.name == "hot_swap") {
        if h.swaps != 1 || !h.versions_served.contains(&2) {
            violations.push(format!(
                "hot_swap: expected 1 swap with version 2 serving, got {} and {:?}",
                h.swaps, h.versions_served
            ));
        }
    }

    // --- report ---
    let body = scenarios.iter().map(ScenarioStats::to_json).collect::<Vec<_>>().join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fkgserve\",\n",
            "  \"facility\": \"{}\",\n",
            "  \"model\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"requests_per_scenario\": {},\n",
            "  \"workers\": {},\n",
            "  \"queue_capacity\": {},\n",
            "  \"deadline_us\": {},\n",
            "  \"k\": {},\n",
            "  \"max_batch\": {},\n",
            "  \"batch_slack_us\": {},\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        world.trace.config.name,
        model_name,
        seed,
        requests,
        workers,
        queue,
        deadline_us,
        k,
        max_batch,
        batch_slack_us,
        body
    );
    std::fs::write(&out, &json)
        .unwrap_or_else(|e| fail(&format_args!("cannot write {}: {e}", out.display())));
    eprintln!("wrote {}", out.display());

    for s in &scenarios {
        let (fe, fc, fp) = s.rung_fractions();
        eprintln!(
            "  {:<18} served {:>5}/{:<5} shed {:>5.1}%  rungs e/c/p {:>4.0}/{:.0}/{:.0}%  \
             p50 {:>7.1}µs  p99 {:>8.1}µs  qps {:>8.0}",
            s.name,
            s.served,
            s.submitted,
            s.shed_frac * 100.0,
            fe * 100.0,
            fc * 100.0,
            fp * 100.0,
            s.p50_ns as f64 / 1e3,
            s.p99_ns as f64 / 1e3,
            s.qps,
        );
    }

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("ROBUSTNESS VIOLATION: {v}");
        }
        exit(1);
    }
    eprintln!("all robustness invariants held");
}

/// Run `prepare_eval` and freeze the model's serving snapshot.
fn freeze(
    model: &mut dyn Recommender,
    ctx: &TrainContext<'_>,
    inter: &Interactions,
    epoch: u64,
) -> ModelSnapshot {
    model.prepare_eval(ctx);
    ModelSnapshot::from_model(model, inter, epoch).unwrap_or_else(|e| fail(&e))
}

/// Build a fresh server, drive it with `drive`, shut down, and fold the
/// responses + final stats into one [`ScenarioStats`] row.
fn run_scenario(
    name: &str,
    world: &BenchWorld,
    faults: FaultConfig,
    cfg: &ServerConfig,
    drive: impl FnOnce(&Server) -> DriveReport,
) -> ScenarioStats {
    let server = world.server(faults, cfg);
    let mut report = drive(&server);
    let (stragglers, stats) = server.shutdown();
    report.responses.extend(stragglers);
    ScenarioStats::collect(name, &report, &stats)
}
