//! Reproducibility guarantees: every model must be bitwise deterministic
//! under a fixed seed, and the evaluator must agree with a brute-force
//! reference implementation.

use facility_kgrec::eval::metrics::topk_for_user;
use facility_kgrec::kg::Id;
use facility_kgrec::models::{ModelConfig, ModelKind, TrainContext};
use facility_kgrec::prelude::seeded_rng;

mod util {
    use facility_kgrec::datagen::{FacilityConfig, Trace};
    use facility_kgrec::kg::{Ckg, Interactions, SourceMask};
    use facility_kgrec::prelude::seeded_rng;

    pub fn world() -> (Interactions, Ckg) {
        let trace = Trace::generate(&FacilityConfig::tiny(), 3);
        let inter = trace.split_interactions(0.2, &mut seeded_rng(3));
        let mut b = trace.ckg_builder(3);
        b.add_interactions(&inter.train_pairs);
        (inter, b.build(SourceMask::all()))
    }
}

#[test]
fn every_model_is_deterministic_under_seed() {
    let (inter, ckg) = util::world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let cfg = ModelConfig { embed_dim: 8, batch_size: 64, ..ModelConfig::default() };
    for kind in ModelKind::table2_order() {
        let run = |seed: u64| {
            let mut model = kind.build(&ctx, &cfg);
            let mut rng = seeded_rng(seed);
            let losses: Vec<f32> = (0..2).map(|_| model.train_epoch(&ctx, &mut rng)).collect();
            model.prepare_eval(&ctx);
            (losses, model.score_items(0))
        };
        let (la, sa) = run(9);
        let (lb, sb) = run(9);
        assert_eq!(la, lb, "{}: losses diverge under same seed", kind.label());
        assert_eq!(sa, sb, "{}: scores diverge under same seed", kind.label());
        let (lc, _) = run(10);
        assert_ne!(la, lc, "{}: different seeds should differ", kind.label());
    }
}

/// Brute-force reference: full sort by (score desc, id asc) then count.
fn reference_metrics(scores: &[f32], train: &[Id], test: &[Id], k: usize) -> Option<(f64, f64)> {
    if test.is_empty() || k == 0 {
        return None;
    }
    let mut order: Vec<u32> =
        (0..scores.len() as u32).filter(|i| train.binary_search(i).is_err()).collect();
    if order.is_empty() {
        return None;
    }
    order.sort_by(|&a, &b| {
        scores[b as usize].partial_cmp(&scores[a as usize]).unwrap().then(a.cmp(&b))
    });
    let k_eff = k.min(order.len());
    let mut hits = 0;
    let mut dcg = 0.0;
    for (pos, item) in order[..k_eff].iter().enumerate() {
        if test.binary_search(item).is_ok() {
            hits += 1;
            dcg += 1.0 / ((pos + 2) as f64).log2();
        }
    }
    let idcg: f64 = (0..test.len().min(k_eff)).map(|p| 1.0 / ((p + 2) as f64).log2()).sum();
    Some((hits as f64 / test.len() as f64, dcg / idcg))
}

#[test]
fn topk_matches_brute_force_reference() {
    let mut rng = seeded_rng(77);
    use rand::Rng;
    for case in 0..200 {
        let n_items = rng.gen_range(3..40);
        let scores: Vec<f32> = (0..n_items)
            .map(|_| (rng.gen_range(0..7) as f32) / 7.0) // deliberate ties
            .collect();
        let mut train: Vec<Id> = (0..n_items as Id).filter(|_| rng.gen_bool(0.2)).collect();
        let mut test: Vec<Id> = (0..n_items as Id)
            .filter(|i| train.binary_search(i).is_err() && rng.gen_bool(0.2))
            .collect();
        train.sort_unstable();
        test.sort_unstable();
        let k = rng.gen_range(1..15);
        let fast = topk_for_user(&scores, &train, &test, k);
        let slow = reference_metrics(&scores, &train, &test, k);
        match (fast, slow) {
            (Some(f), Some((recall, ndcg))) => {
                assert!((f.recall - recall).abs() < 1e-12, "case {case}: recall");
                assert!((f.ndcg - ndcg).abs() < 1e-12, "case {case}: ndcg");
            }
            (None, None) => {}
            other => panic!("case {case}: presence mismatch {other:?}"),
        }
    }
}
