//! Fault-injection suite for the online serving layer.
//!
//! Acceptance criteria exercised here, end to end on a real trained
//! snapshot rather than toy matrices:
//!
//! - **No silent drops**: under every fault scenario (latency spikes,
//!   injected worker panics, corrupt snapshot swaps, queue overload) every
//!   submission is answered with exactly one rung-tagged response or a
//!   structured rejection.
//! - **Hot swap fidelity**: a mid-load snapshot swap yields responses that
//!   are bitwise identical to offline `rank_top_k` on whichever snapshot
//!   version served them.
//! - **Verified swaps**: corrupt snapshot files are rejected at swap time
//!   and the previous snapshot keeps serving, bit-for-bit.
//! - **Deterministic recovery**: the retry loader backs off through the
//!   injected clock with seeded jitter and retries transient I/O only.

use std::cell::Cell;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use facility_kgrec::datagen::{FacilityConfig, Trace};
use facility_kgrec::eval::rank_top_k;
use facility_kgrec::kg::{Id, SourceMask};
use facility_kgrec::models::{ModelConfig, ModelKind, TrainContext};
use facility_kgrec::prelude::seeded_rng;
use facility_kgrec::serve::{
    corrupt_flip_byte, corrupt_truncate, corrupt_version, drive_closed_loop,
    drive_closed_loop_with, load_snapshot_with_retry_from, Clock, DeadlinePolicy, Engine,
    FaultConfig, FaultPlan, ModelSnapshot, RealClock, Request, Response, RetryPolicy, Rung, Server,
    ServerConfig, ServerStats, ShedReason, SnapshotStore, VirtualClock,
};

use facility_kgrec::ckpt::CkptError;

const SEED: u64 = 0x0FAC_1117;
const K: usize = 10;
/// Deadline long enough that virtual-clock runs never degrade unless a
/// fault injects virtual latency.
const AMPLE_NS: u64 = u64::MAX / 4;

/// A trained model frozen at two different epochs, shared by every test.
struct World {
    train: Vec<Vec<Id>>,
    snap_a: ModelSnapshot,
    snap_b: ModelSnapshot,
}

static WORLD: OnceLock<World> = OnceLock::new();

fn world() -> &'static World {
    WORLD.get_or_init(|| {
        let trace = Trace::generate(&FacilityConfig::tiny(), SEED);
        let inter = trace.split_interactions(0.2, &mut seeded_rng(SEED ^ 0x517));
        let mut builder = trace.ckg_builder(4);
        builder.add_interactions(&inter.train_pairs);
        let ckg = builder.build(SourceMask::all());
        let ctx = TrainContext { inter: &inter, ckg: &ckg };
        let mut model = ModelKind::Bprmf.build(&ctx, &ModelConfig::fast());
        let mut rng = seeded_rng(SEED);
        for _ in 0..3 {
            model.train_epoch(&ctx, &mut rng);
        }
        model.prepare_eval(&ctx);
        let snap_a = ModelSnapshot::from_model(model.as_ref(), &inter, 3).expect("snapshot A");
        for _ in 0..2 {
            model.train_epoch(&ctx, &mut rng);
        }
        model.prepare_eval(&ctx);
        let snap_b = ModelSnapshot::from_model(model.as_ref(), &inter, 5).expect("snapshot B");
        assert_ne!(snap_a, snap_b, "the two frozen epochs must differ for swap tests");
        World { train: inter.train.clone(), snap_a, snap_b }
    })
}

fn request_stream(n: usize) -> Vec<Id> {
    let n_users = world().snap_a.n_users() as u32;
    (0..n as u32).map(|i| i % n_users).collect()
}

fn start_server(
    snap: &ModelSnapshot,
    faults: FaultPlan,
    deadline_ns: u64,
    clock: Arc<dyn Clock>,
    cfg: &ServerConfig,
) -> Server {
    let w = world();
    let store = Arc::new(SnapshotStore::new(snap.clone()));
    let engine = Engine::new(
        store,
        Arc::new(w.train.clone()),
        DeadlinePolicy { deadline_ns, k: K },
        faults,
        clock,
    );
    Server::start(engine, cfg)
}

/// Silence the default panic hook while `f` runs so injected worker
/// panics don't spam the test output, then restore it. The hook is
/// process-global, so concurrent panic-injecting tests serialize here.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    use std::sync::Mutex;
    static HOOK: Mutex<()> = Mutex::new(());
    let guard = HOOK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    drop(guard);
    out
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("facility_serve_faults").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The no-silent-drops contract: one response per submission, distinct
/// ids, and the server's own accounting closes.
fn assert_fully_accounted(submitted: usize, responses: &[Response], stats: &ServerStats) {
    assert_eq!(responses.len(), submitted, "one response per submission");
    let mut ids: Vec<u64> = responses.iter().map(Response::id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), submitted, "response ids must be distinct");
    assert_eq!(stats.submitted, submitted as u64);
    assert_eq!(stats.submitted, stats.admitted + stats.rejected, "admission accounting");
    assert_eq!(stats.silent_drops(), 0, "every admitted request must be answered");
}

/// Offline ground truth for the exact rung on a given snapshot.
fn expected_exact(snap: &ModelSnapshot, user: Id) -> Vec<(Id, f32)> {
    rank_top_k(&snap.score_user(user), &world().train[user as usize], K)
}

fn bits(items: &[(Id, f32)]) -> Vec<(Id, u32)> {
    items.iter().map(|&(id, s)| (id, s.to_bits())).collect()
}

#[test]
fn every_fault_scenario_answers_every_submission_with_a_tagged_rung() {
    let w = world();
    let scenarios: Vec<(&str, FaultConfig)> = vec![
        ("healthy", FaultConfig::healthy()),
        (
            "latency_spikes",
            FaultConfig {
                seed: SEED ^ 1,
                latency_spike_prob: 0.4,
                latency_spike_ns: 2_000_000,
                panic_prob: 0.0,
            },
        ),
        (
            "worker_panics",
            FaultConfig {
                seed: SEED ^ 2,
                latency_spike_prob: 0.0,
                latency_spike_ns: 0,
                panic_prob: 0.25,
            },
        ),
        (
            "mixed",
            FaultConfig {
                seed: SEED ^ 3,
                latency_spike_prob: 0.3,
                latency_spike_ns: 2_000_000,
                panic_prob: 0.1,
            },
        ),
    ];
    quiet_panics(|| {
        for (name, cfg) in scenarios {
            let users = request_stream(150);
            let server = start_server(
                &w.snap_a,
                FaultPlan::new(cfg),
                1_000_000, // 1ms: spikes blow the budget, clean requests fit
                Arc::new(VirtualClock::new()),
                &ServerConfig { workers: 2, queue_capacity: 64, ..ServerConfig::default() },
            );
            let report = drive_closed_loop(&server, &users, 8);
            let (stragglers, stats) = server.shutdown();
            let mut responses = report.responses;
            responses.extend(stragglers);
            assert_fully_accounted(users.len(), &responses, &stats);
            let mut tagged = 0u64;
            for resp in &responses {
                let served = resp
                    .served()
                    .unwrap_or_else(|| panic!("[{name}] nothing should be shed: {resp:?}"));
                assert!(!served.rung.label().is_empty());
                assert_eq!(served.snapshot_version, 1, "[{name}] no swap happened");
                tagged += 1;
            }
            assert_eq!(tagged, users.len() as u64);
            let counters = &stats.engine;
            assert_eq!(
                counters.exact + counters.cached + counters.popularity,
                users.len() as u64,
                "[{name}] every response came off exactly one ladder rung"
            );
            if name == "worker_panics" || name == "mixed" {
                assert!(
                    counters.panics_recovered > 0,
                    "[{name}] the injected panics must actually fire"
                );
                let recovered =
                    responses.iter().filter(|r| r.served().is_some_and(|s| s.recovered_panic));
                assert_eq!(recovered.count() as u64, counters.panics_recovered);
            }
            if name == "healthy" {
                assert_eq!(counters.exact, users.len() as u64, "healthy run stays on exact");
                assert_eq!(counters.panics_recovered, 0);
                assert_eq!(counters.deadline_misses, 0);
            }
        }
    });
}

#[test]
fn same_seed_fault_replay_is_deterministic() {
    let w = world();
    let faulty = FaultConfig {
        seed: SEED ^ 7,
        latency_spike_prob: 0.5,
        latency_spike_ns: 3_000_000,
        panic_prob: 0.15,
    };
    let run = || {
        let users = request_stream(80);
        let server = start_server(
            &w.snap_a,
            FaultPlan::new(faulty),
            1_000_000,
            Arc::new(VirtualClock::new()),
            &ServerConfig { workers: 1, queue_capacity: 64, ..ServerConfig::default() },
        );
        let report = drive_closed_loop(&server, &users, 1);
        let (stragglers, stats) = server.shutdown();
        assert!(stragglers.is_empty(), "concurrency-1 drive leaves nothing in flight");
        assert_fully_accounted(users.len(), &report.responses, &stats);
        report
            .responses
            .iter()
            .map(|r| {
                let s = r.served().expect("nothing shed at concurrency 1");
                (
                    s.id,
                    s.user,
                    s.rung.label(),
                    s.snapshot_version,
                    s.recovered_panic,
                    bits(&s.items),
                )
            })
            .collect::<Vec<_>>()
    };
    let (a, b) = quiet_panics(|| (run(), run()));
    assert_eq!(a, b, "same seed + virtual clock must replay bitwise-identically");
}

#[test]
fn injected_panics_always_degrade_and_never_drop() {
    let w = world();
    let always_panic = FaultConfig {
        seed: SEED ^ 11,
        latency_spike_prob: 0.0,
        latency_spike_ns: 0,
        panic_prob: 1.0,
    };
    quiet_panics(|| {
        let users = request_stream(40);
        let server = start_server(
            &w.snap_a,
            FaultPlan::new(always_panic),
            AMPLE_NS,
            Arc::new(VirtualClock::new()),
            &ServerConfig { workers: 2, queue_capacity: 64, ..ServerConfig::default() },
        );
        let report = drive_closed_loop(&server, &users, 4);
        let (stragglers, stats) = server.shutdown();
        let mut responses = report.responses;
        responses.extend(stragglers);
        assert_fully_accounted(users.len(), &responses, &stats);
        for resp in &responses {
            let s = resp.served().expect("panics must degrade, not shed");
            assert!(s.recovered_panic, "every response rode the recovery path");
            assert!(
                matches!(s.rung, Rung::Popularity),
                "no exact rung ever succeeded, so no cache entry exists"
            );
            assert_eq!(
                bits(&s.items),
                bits(&w.snap_a.popularity_top_k(&w.train[s.user as usize], K)),
                "the popularity prior itself stays deterministic"
            );
        }
        assert_eq!(stats.engine.panics_recovered, users.len() as u64);
        assert_eq!(stats.engine.exact, 0);
    });
}

#[test]
fn corrupt_swaps_are_rejected_and_the_previous_snapshot_keeps_serving() {
    let w = world();
    let dir = fresh_dir("corrupt_swaps");
    let good = dir.join("snap_a.fkc");
    w.snap_a.save(&good).expect("save snapshot A");
    let truncated = dir.join("truncated.fkc");
    let flipped = dir.join("flipped.fkc");
    let skewed = dir.join("skewed.fkc");
    corrupt_truncate(&good, &truncated, 64).expect("make truncated copy");
    corrupt_flip_byte(&good, &flipped, 40).expect("make bit-flipped copy");
    corrupt_version(&good, &skewed).expect("make version-skewed copy");

    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
    let server = start_server(
        &w.snap_a,
        FaultPlan::healthy(),
        AMPLE_NS,
        Arc::clone(&clock),
        &ServerConfig { workers: 1, queue_capacity: 64, ..ServerConfig::default() },
    );
    let users = request_stream(40);
    let policy = RetryPolicy { attempts: 3, base_ns: 1_000, max_ns: 8_000, seed: SEED };
    let report = drive_closed_loop_with(&server, &users, 1, |i| {
        if i == users.len() / 2 {
            for corrupt in [&truncated, &flipped, &skewed] {
                let err = server
                    .engine()
                    .store()
                    .swap_verified_from(corrupt, &policy, clock.as_ref())
                    .expect_err("corrupt snapshot must be rejected at swap time");
                assert!(!err.is_transient(), "corruption is permanent, not retryable: {err}");
            }
        }
    });
    assert_eq!(server.engine().store().version(), 1);
    let (stragglers, stats) = server.shutdown();
    assert!(stragglers.is_empty());
    assert_fully_accounted(users.len(), &report.responses, &stats);
    assert_eq!(stats.rejected_swaps, 3, "all three corruptions counted as rejected");
    assert_eq!(stats.swaps, 0, "no corrupt file may ever install");
    for resp in &report.responses {
        let s = resp.served().expect("healthy run sheds nothing");
        assert_eq!(s.snapshot_version, 1);
        assert!(matches!(s.rung, Rung::Exact));
        assert_eq!(
            bits(&s.items),
            bits(&expected_exact(&w.snap_a, s.user)),
            "serving through three rejected swaps stays bitwise-faithful to snapshot A"
        );
    }
}

#[test]
fn hot_swap_mid_load_is_bitwise_faithful_to_each_version() {
    let w = world();
    let dir = fresh_dir("hot_swap");
    let path_b = dir.join("snap_b.fkc");
    w.snap_b.save(&path_b).expect("save snapshot B");

    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
    let server = start_server(
        &w.snap_a,
        FaultPlan::healthy(),
        AMPLE_NS,
        Arc::clone(&clock),
        &ServerConfig { workers: 1, queue_capacity: 64, ..ServerConfig::default() },
    );
    let users = request_stream(60);
    let policy = RetryPolicy { attempts: 2, base_ns: 1_000, max_ns: 8_000, seed: SEED };
    let mid = users.len() / 2;
    let report = drive_closed_loop_with(&server, &users, 1, |i| {
        if i == mid {
            let version = server
                .engine()
                .store()
                .swap_verified_from(&path_b, &policy, clock.as_ref())
                .expect("verified swap of a sound snapshot succeeds");
            assert_eq!(version, 2);
        }
    });
    let (stragglers, stats) = server.shutdown();
    assert!(stragglers.is_empty());
    assert_fully_accounted(users.len(), &report.responses, &stats);
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.rejected_swaps, 0);

    let (mut before, mut after) = (0usize, 0usize);
    for resp in &report.responses {
        let s = resp.served().expect("healthy run sheds nothing");
        let expected = match s.snapshot_version {
            1 => {
                before += 1;
                expected_exact(&w.snap_a, s.user)
            }
            2 => {
                after += 1;
                expected_exact(&w.snap_b, s.user)
            }
            v => panic!("unexpected snapshot version {v}"),
        };
        assert!(matches!(s.rung, Rung::Exact));
        assert_eq!(
            bits(&s.items),
            bits(&expected),
            "request {} must match the snapshot version that served it",
            s.id
        );
    }
    assert_eq!(before, mid, "requests before the swap rode version 1");
    assert_eq!(after, users.len() - mid, "requests after the swap rode version 2");
}

#[test]
fn overload_sheds_with_structured_rejections_never_silently() {
    let w = world();
    // Real clock + guaranteed latency spikes: the single worker is slow in
    // wall time, so the tiny admission queue actually fills.
    let slow = FaultConfig {
        seed: SEED ^ 13,
        latency_spike_prob: 1.0,
        latency_spike_ns: 1_000_000,
        panic_prob: 0.0,
    };
    let users = request_stream(60);
    let server = start_server(
        &w.snap_a,
        FaultPlan::new(slow),
        AMPLE_NS, // ample deadline keeps every request on the slow exact rung
        Arc::new(RealClock::new()),
        &ServerConfig { workers: 1, queue_capacity: 2, ..ServerConfig::default() },
    );
    let report = drive_closed_loop(&server, &users, 16);
    let (stragglers, stats) = server.shutdown();
    let mut responses = report.responses;
    responses.extend(stragglers);
    assert_fully_accounted(users.len(), &responses, &stats);
    assert!(stats.rejected > 0, "the overload must actually shed");
    assert!(stats.admitted > 0, "shedding everything would prove nothing");
    for resp in &responses {
        match resp {
            Response::Served(s) => assert!(!s.rung.label().is_empty()),
            Response::Rejected(rej) => {
                assert!(
                    matches!(rej.reason, ShedReason::QueueFull),
                    "overload rejections carry the queue-full reason: {rej:?}"
                );
                assert!(!rej.reason.label().is_empty());
            }
        }
    }
}

#[test]
fn closed_server_and_unknown_users_shed_structurally() {
    let w = world();
    let server = start_server(
        &w.snap_a,
        FaultPlan::healthy(),
        AMPLE_NS,
        Arc::new(VirtualClock::new()),
        &ServerConfig { workers: 1, queue_capacity: 8, ..ServerConfig::default() },
    );
    let bogus = w.snap_a.n_users() as Id + 17;
    let rej = server.submit(bogus).expect_err("out-of-range user must be shed");
    assert!(matches!(rej.reason, ShedReason::UnknownUser));
    server.close();
    let rej = server.submit(0).expect_err("a closed server admits nothing");
    assert!(matches!(rej.reason, ShedReason::ShuttingDown));
    let (stragglers, stats) = server.shutdown();
    assert!(stragglers.is_empty());
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.silent_drops(), 0);
}

#[test]
fn retry_loader_backs_off_deterministically_and_only_on_transient_io() {
    let w = world();
    let clock = VirtualClock::new();
    let payload = w.snap_a.encode();
    let policy = RetryPolicy { attempts: 4, base_ns: 1_000, max_ns: 10_000, seed: 7 };

    // Two transient I/O failures, then success: the loader retries through
    // the injected clock with exactly the seeded backoff schedule.
    let calls = Cell::new(0usize);
    let mut flaky = |_: &Path| -> Result<Vec<u8>, CkptError> {
        calls.set(calls.get() + 1);
        if calls.get() <= 2 {
            Err(CkptError::Io(std::io::Error::new(std::io::ErrorKind::Interrupted, "flaky")))
        } else {
            Ok(payload.clone())
        }
    };
    let t0 = clock.now_ns();
    let snap = load_snapshot_with_retry_from(&mut flaky, Path::new("virtual"), &policy, &clock)
        .expect("transient failures retry through to success");
    assert_eq!(calls.get(), 3, "two failures cost exactly two retries");
    assert_eq!(snap, w.snap_a, "the retried load returns the snapshot bit-for-bit");
    assert_eq!(
        clock.now_ns() - t0,
        policy.backoff_ns(0) + policy.backoff_ns(1),
        "waits follow the seeded backoff schedule exactly"
    );
    let same = RetryPolicy { attempts: 4, base_ns: 1_000, max_ns: 10_000, seed: 7 };
    for attempt in 0..4 {
        assert_eq!(policy.backoff_ns(attempt), same.backoff_ns(attempt), "jitter is seeded");
        assert!(policy.backoff_ns(attempt) <= policy.max_ns + policy.base_ns / 2);
    }

    // Corrupt payloads are permanent: exactly one attempt, no waiting.
    let bad_calls = Cell::new(0usize);
    let mut corrupt = |_: &Path| -> Result<Vec<u8>, CkptError> {
        bad_calls.set(bad_calls.get() + 1);
        Ok(vec![0xDE, 0xAD, 0xBE, 0xEF])
    };
    let t1 = clock.now_ns();
    let err = load_snapshot_with_retry_from(&mut corrupt, Path::new("virtual"), &policy, &clock)
        .expect_err("garbage payload must fail");
    assert!(!err.is_transient());
    assert_eq!(bad_calls.get(), 1, "corruption never retries");
    assert_eq!(clock.now_ns(), t1, "no backoff waits on a permanent failure");

    // Persistent transient failure exhausts the attempt budget, no more.
    let io_calls = Cell::new(0usize);
    let mut dead = |_: &Path| -> Result<Vec<u8>, CkptError> {
        io_calls.set(io_calls.get() + 1);
        Err(CkptError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")))
    };
    let err = load_snapshot_with_retry_from(&mut dead, Path::new("virtual"), &policy, &clock)
        .expect_err("a dead path fails after the budget");
    assert!(err.is_transient(), "the terminal error still reports its transient class");
    assert_eq!(io_calls.get(), policy.attempts, "attempt budget is exact");
}

/// Build a standalone engine (no server) on a virtual clock for the
/// micro-batching equivalence tests.
fn bare_engine(faults: FaultPlan) -> Engine {
    let w = world();
    Engine::new(
        Arc::new(SnapshotStore::new(w.snap_a.clone())),
        Arc::new(w.train.clone()),
        DeadlinePolicy { deadline_ns: AMPLE_NS, k: K },
        faults,
        Arc::new(VirtualClock::new()),
    )
}

/// Micro-batched responses must be bitwise identical to per-request
/// responses under the same seed: same items (id and score bits), same
/// rung, same snapshot version, same fault decisions — and on a virtual
/// clock with no latency spikes, identical timings too. Fault decisions
/// are a pure function of `(seed, request_id)`, so batching cannot
/// change who faults.
#[test]
fn micro_batched_engine_responses_are_bitwise_identical_to_sequential() {
    let w = world();
    let n_users = w.snap_a.n_users() as u32;
    let configs = [
        ("healthy", FaultConfig::healthy()),
        (
            "panics",
            FaultConfig {
                seed: SEED ^ 9,
                latency_spike_prob: 0.0,
                latency_spike_ns: 0,
                panic_prob: 0.3,
            },
        ),
    ];
    quiet_panics(|| {
        for (name, cfg) in configs {
            for batch_len in [1usize, 2, 7, 8, 9] {
                // Duplicate users inside a batch on purpose: intra-batch
                // cache interactions must replay the sequential ones.
                let reqs: Vec<Request> = (0..batch_len as u64)
                    .map(|i| Request { id: i, user: (i as u32 / 2) % n_users, arrival_ns: 0 })
                    .collect();

                let sequential = bare_engine(FaultPlan::new(cfg));
                let seq: Vec<_> = reqs.iter().map(|r| sequential.handle(r)).collect();

                let batched = bare_engine(FaultPlan::new(cfg));
                let bat = batched.handle_batch(&reqs);

                assert_eq!(seq.len(), bat.len(), "[{name}] B={batch_len}");
                for (s, b) in seq.iter().zip(&bat) {
                    let what = format!("[{name}] B={batch_len} id={}", s.id);
                    assert_eq!(s.id, b.id, "{what}");
                    assert_eq!(s.user, b.user, "{what}");
                    assert_eq!(s.rung, b.rung, "{what} rung");
                    assert_eq!(s.snapshot_version, b.snapshot_version, "{what} version");
                    assert_eq!(bits(&s.items), bits(&b.items), "{what} items");
                    assert_eq!(s.arrival_ns, b.arrival_ns, "{what}");
                    assert_eq!(s.started_ns, b.started_ns, "{what} started");
                    assert_eq!(s.finished_ns, b.finished_ns, "{what} finished");
                    assert_eq!(s.deadline_missed, b.deadline_missed, "{what} deadline");
                    assert_eq!(s.recovered_panic, b.recovered_panic, "{what} panic flag");
                }
                // Counters close the same way (batch counters aside).
                let sc = sequential.counters();
                let bc = batched.counters();
                assert_eq!(sc.exact, bc.exact, "[{name}] B={batch_len} exact");
                assert_eq!(sc.popularity, bc.popularity, "[{name}] B={batch_len} popularity");
                assert_eq!(
                    sc.panics_recovered, bc.panics_recovered,
                    "[{name}] B={batch_len} panics"
                );
                if batch_len >= 2 {
                    assert_eq!(bc.micro_batches, 1, "[{name}] one micro-batch");
                    assert_eq!(bc.batched_requests, batch_len as u64, "[{name}]");
                } else {
                    assert_eq!(bc.micro_batches, 0, "[{name}] B=1 routes through handle()");
                }
            }
        }
    });
}

/// End-to-end: a single-worker server with micro-batching on (max_batch
/// = 8) serves every request with items bitwise identical to offline
/// `rank_top_k` on the served snapshot, and identical per user to a
/// batching-disabled (max_batch = 1) server under the same seed.
#[test]
fn micro_batched_server_matches_unbatched_and_offline_oracle() {
    let w = world();
    let users = request_stream(96);
    // Per config: one sorted `(user, item-bit pairs)` row per response.
    type ServedBits = Vec<(Id, Vec<(Id, u32)>)>;
    let mut by_cfg: Vec<ServedBits> = Vec::new();
    for max_batch in [1usize, 8] {
        let server = start_server(
            &w.snap_a,
            FaultPlan::healthy(),
            AMPLE_NS,
            Arc::new(VirtualClock::new()),
            &ServerConfig { workers: 1, queue_capacity: 128, max_batch, batch_slack_us: 0 },
        );
        let report = drive_closed_loop(&server, &users, 32);
        let (stragglers, stats) = server.shutdown();
        let mut responses = report.responses;
        responses.extend(stragglers);
        assert_fully_accounted(users.len(), &responses, &stats);
        let mut per_user = Vec::new();
        for resp in &responses {
            let served = resp.served().expect("ample budget: nothing sheds");
            assert_eq!(served.rung, Rung::Exact, "max_batch={max_batch}");
            assert_eq!(
                bits(&served.items),
                bits(&expected_exact(&w.snap_a, served.user)),
                "max_batch={max_batch} user={} must match the offline oracle bitwise",
                served.user
            );
            per_user.push((served.user, bits(&served.items)));
        }
        per_user.sort();
        by_cfg.push(per_user);
        if max_batch == 8 {
            assert!(
                stats.engine.batched_requests > 0,
                "a 32-deep closed loop against one worker must form real batches"
            );
        }
    }
    assert_eq!(by_cfg[0], by_cfg[1], "batched and unbatched servers serve identical bits");
}
