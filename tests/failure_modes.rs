//! Failure-injection integration tests: degenerate users, degenerate
//! graphs, and out-of-range parameters must degrade gracefully, never
//! panic.

use facility_kgrec::ckat::recommend_top_k;
use facility_kgrec::eval::{evaluate, TrainSettings};
use facility_kgrec::kg::{CkgBuilder, Id, Interactions, KnowledgeSource, SourceMask};
use facility_kgrec::models::{ModelConfig, ModelKind, TrainContext};
use facility_kgrec::prelude::seeded_rng;

/// A world with pathologies: an inactive user, a user who trained on every
/// item, an item nobody queried, and an isolated attribute.
fn pathological_world() -> (Interactions, facility_kgrec::kg::Ckg) {
    let train: Vec<Vec<Id>> = vec![
        vec![0, 1],          // normal user
        vec![],              // cold-start user (no train, no test)
        vec![0, 1, 2, 3, 4], // saturated user (all items)
        vec![2],             // user with test data
    ];
    let test: Vec<Vec<Id>> = vec![vec![2], vec![], vec![], vec![3]];
    let inter = Interactions::from_lists(5, train, test);
    let mut b = CkgBuilder::new(4, 5);
    b.add_interactions(&inter.train_pairs);
    // Item 4 gets no interactions; attribute "orphan" hangs off it only.
    b.add_item_attribute(KnowledgeSource::Dkg, "hasDataType", 4, "orphan");
    b.add_item_attribute(KnowledgeSource::Loc, "locatedAt", 0, "site:0");
    b.add_item_attribute(KnowledgeSource::Loc, "locatedAt", 2, "site:0");
    (inter.clone(), b.build(SourceMask::all()))
}

fn fast_cfg() -> ModelConfig {
    ModelConfig { embed_dim: 8, batch_size: 16, keep_prob: 1.0, ..ModelConfig::default() }
}

#[test]
fn every_model_survives_pathological_world() {
    let (inter, ckg) = pathological_world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut rng = seeded_rng(1);
    for kind in ModelKind::table2_order() {
        let mut model = kind.build(&ctx, &fast_cfg());
        for _ in 0..3 {
            let loss = model.train_epoch(&ctx, &mut rng);
            assert!(loss.is_finite(), "{}", kind.label());
        }
        model.prepare_eval(&ctx);
        let r = evaluate(model.as_ref(), &inter, 3);
        assert!(r.recall.is_finite(), "{}", kind.label());
        // Cold-start user still gets *some* scores.
        let scores = model.score_items(1);
        assert_eq!(scores.len(), 5, "{}", kind.label());
        assert!(scores.iter().all(|s| s.is_finite()), "{}", kind.label());
    }
}

#[test]
fn saturated_user_gets_empty_recommendations() {
    let (inter, ckg) = pathological_world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut model = ModelKind::Bprmf.build(&ctx, &fast_cfg());
    model.prepare_eval(&ctx);
    let recs = recommend_top_k(model.as_ref(), &inter, 2, 10);
    assert!(recs.is_empty(), "user 2 trained on every item");
}

#[test]
fn k_larger_than_catalog_is_fine() {
    let (inter, ckg) = pathological_world();
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut model = ModelKind::Bprmf.build(&ctx, &fast_cfg());
    model.prepare_eval(&ctx);
    let r = evaluate(model.as_ref(), &inter, 1000);
    // With K covering the whole catalog, recall for evaluated users is 1.
    assert!((r.recall - 1.0).abs() < 1e-9);
    let recs = recommend_top_k(model.as_ref(), &inter, 0, 1000);
    assert_eq!(recs.len(), 3, "5 items minus 2 train positives");
}

#[test]
fn interaction_only_graph_trains_knowledge_models() {
    // No IAG at all: knowledge-aware models degrade to interaction edges.
    let inter =
        Interactions::from_lists(4, vec![vec![0], vec![1], vec![2]], vec![vec![1], vec![], vec![]]);
    let mut b = CkgBuilder::new(3, 4);
    b.add_interactions(&inter.train_pairs);
    let ckg = b.build(SourceMask::all());
    assert_eq!(ckg.n_attrs, 0);
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut rng = seeded_rng(2);
    for kind in [ModelKind::Ckat, ModelKind::Kgcn, ModelKind::RippleNet, ModelKind::Cke] {
        let mut model = kind.build(&ctx, &fast_cfg());
        let loss = model.train_epoch(&ctx, &mut rng);
        assert!(loss.is_finite(), "{}", kind.label());
        model.prepare_eval(&ctx);
        assert!(model.score_items(0).iter().all(|s| s.is_finite()));
    }
}

#[test]
fn trainer_handles_world_without_test_data() {
    let inter = Interactions::from_lists(3, vec![vec![0], vec![1]], vec![vec![], vec![]]);
    let mut b = CkgBuilder::new(2, 3);
    b.add_interactions(&inter.train_pairs);
    let ckg = b.build(SourceMask::all());
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut model = ModelKind::Bprmf.build(&ctx, &fast_cfg());
    let settings = TrainSettings {
        max_epochs: 2,
        eval_every: 1,
        patience: 0,
        k: 5,
        seed: 1,
        verbose: false,
        ..TrainSettings::default()
    };
    let report = facility_kgrec::eval::train(model.as_mut(), &ctx, &settings);
    assert_eq!(report.best.n_users, 0);
    assert_eq!(report.best.recall, 0.0);
}
