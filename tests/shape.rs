//! Shape tests: qualitative claims of the paper's evaluation, asserted
//! with slack on small (fast) synthetic worlds. These are the
//! *integration-level* counterparts of the full table regenerations in
//! `facility-bench`.

use facility_kgrec::ckat::{Experiment, ExperimentConfig};
use facility_kgrec::datagen::{stats, FacilityConfig, Trace};
use facility_kgrec::eval::TrainSettings;
use facility_kgrec::kg::SourceMask;
use facility_kgrec::models::ckat::{Aggregator, CkatConfig};
use facility_kgrec::models::{ModelConfig, ModelKind};

/// A small facility with strong affinity structure so knowledge helps.
fn facility() -> FacilityConfig {
    let mut c = FacilityConfig::tiny();
    c.n_users = 120;
    c.n_items = 80;
    c.n_data_types = 8;
    c.n_sites = 9;
    c.locality_affinity = 0.5;
    c.datatype_affinity = 0.6;
    c
}

fn settings() -> TrainSettings {
    TrainSettings {
        max_epochs: 20,
        eval_every: 5,
        patience: 0,
        k: 10,
        seed: 3,
        verbose: false,
        ..TrainSettings::default()
    }
}

fn cfg() -> ModelConfig {
    ModelConfig { embed_dim: 16, batch_size: 256, keep_prob: 1.0, ..ModelConfig::default() }
}

fn ckat_cfg() -> CkatConfig {
    CkatConfig {
        layer_dims: vec![16, 8],
        use_attention: true,
        aggregator: Aggregator::Concat,
        transr_dim: 16,
        margin: 1.0,
        batch_local: true,
        hub_cache: true,
        hub_percentile: 0.99,
        base: cfg(),
    }
}

/// Table II shape: the propagation model with knowledge beats plain MF.
#[test]
fn ckat_beats_bprmf() {
    let exp = Experiment::prepare(&ExperimentConfig {
        facility: facility(),
        seed: 9,
        ..ExperimentConfig::default()
    });
    let bpr = exp.run_model(ModelKind::Bprmf, &cfg(), &settings());
    let ckat = exp.run_model(ModelKind::Ckat, &cfg(), &settings());
    assert!(
        ckat.best.recall > bpr.best.recall * 0.95,
        "CKAT {:.4} should not trail BPRMF {:.4}",
        ckat.best.recall,
        bpr.best.recall
    );
}

/// Table III shape: the full knowledge combination beats interactions
/// alone (with slack — small worlds are noisy).
#[test]
fn full_knowledge_beats_uig_only() {
    let exp = Experiment::prepare(&ExperimentConfig {
        facility: facility(),
        seed: 10,
        ..ExperimentConfig::default()
    });
    let full = exp.run_ckat(&ckat_cfg(), &settings());
    let uig = exp.with_mask(SourceMask::uig_only()).run_ckat(&ckat_cfg(), &settings());
    assert!(
        full.best.recall > uig.best.recall * 0.9,
        "full CKG {:.4} vs UIG-only {:.4}",
        full.best.recall,
        uig.best.recall
    );
}

/// Figure 5 shape: same-city pairs agree far more often than random pairs.
#[test]
fn same_city_pairs_share_patterns() {
    let trace = Trace::generate(&FacilityConfig::ooi(), 4);
    let pa = stats::pair_affinity(&trace, 4000, &mut facility_kgrec::prelude::seeded_rng(5));
    assert!(pa.region_ratio() > 2.0, "locality ratio {:.2}", pa.region_ratio());
    assert!(pa.type_ratio() > 1.5, "domain ratio {:.2}", pa.type_ratio());
}

/// Section III-B2 shape: the measured affinity shares track the configured
/// affinities (the paper's 43.1% / 51.6% calibration).
#[test]
fn affinity_shares_are_calibrated() {
    let trace = Trace::generate(&FacilityConfig::ooi(), 6);
    let (region_share, type_share) = stats::affinity_shares(&trace);
    // Modal-region share must be at least the direct locality draw rate
    // and well below 1 (queries do explore).
    assert!(
        (0.35..0.95).contains(&region_share),
        "region share {region_share} out of calibrated band"
    );
    assert!((0.4..0.98).contains(&type_share), "type share {type_share} out of band");
}

/// Figure 3 shape: per-user activity is heavy-tailed — the most active
/// user dwarfs the median.
#[test]
fn activity_distribution_is_heavy_tailed() {
    let trace = Trace::generate(&FacilityConfig::ooi(), 7);
    let s = stats::fig3_series(&trace);
    let max = s.data_objects[0];
    let median = s.data_objects[s.data_objects.len() / 2];
    assert!(max >= 5 * median.max(1), "max {max} median {median}");
}

/// Table V shape: depth-2/3 should not lose badly to depth-1; high-order
/// connectivity carries signal in an attribute-structured world.
#[test]
fn deeper_propagation_is_not_worse() {
    let exp = Experiment::prepare(&ExperimentConfig {
        facility: facility(),
        seed: 12,
        ..ExperimentConfig::default()
    });
    let mut shallow_cfg = ckat_cfg();
    shallow_cfg.layer_dims = vec![16];
    let shallow = exp.run_ckat(&shallow_cfg, &settings());
    let deep = exp.run_ckat(&ckat_cfg(), &settings());
    assert!(
        deep.best.recall > shallow.best.recall * 0.85,
        "depth-2 {:.4} collapsed vs depth-1 {:.4}",
        deep.best.recall,
        shallow.best.recall
    );
}
