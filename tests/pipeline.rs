//! End-to-end integration tests: simulator → CKG → training → evaluation
//! → recommendation, across crate boundaries.

use facility_kgrec::ckat::{recommend_top_k, Experiment, ExperimentConfig};
use facility_kgrec::datagen::FacilityConfig;
use facility_kgrec::eval::{evaluate, TrainSettings};
use facility_kgrec::kg::SourceMask;
use facility_kgrec::models::{ModelConfig, ModelKind};

fn tiny() -> ExperimentConfig {
    ExperimentConfig { facility: FacilityConfig::tiny(), seed: 42, ..ExperimentConfig::default() }
}

fn fast_settings() -> TrainSettings {
    TrainSettings {
        max_epochs: 12,
        eval_every: 4,
        patience: 0,
        k: 10,
        seed: 5,
        verbose: false,
        ..TrainSettings::default()
    }
}

fn fast_cfg() -> ModelConfig {
    ModelConfig { embed_dim: 16, batch_size: 128, keep_prob: 1.0, ..ModelConfig::default() }
}

#[test]
fn full_pipeline_produces_sane_metrics() {
    let exp = Experiment::prepare(&tiny());
    let report = exp.run_model(ModelKind::Ckat, &fast_cfg(), &fast_settings());
    assert!(report.best.recall > 0.0 && report.best.recall <= 1.0);
    assert!(report.best.ndcg > 0.0 && report.best.ndcg <= 1.0);
    assert!(report.best.n_users > 0);
    // Training should help relative to random ranking: with 40 items and
    // K=10, random recall ≈ 10/40 = 0.25 of test items in expectation is
    // a generous floor only for uniformly-queried items; just require a
    // non-trivial level here.
    assert!(report.best.recall > 0.2, "recall {}", report.best.recall);
}

#[test]
fn pipeline_is_deterministic_under_seed() {
    let a = Experiment::prepare(&tiny());
    let b = Experiment::prepare(&tiny());
    assert_eq!(a.inter.train, b.inter.train);
    assert_eq!(a.ckg.canonical_triples, b.ckg.canonical_triples);
    let ra = a.run_model(ModelKind::Bprmf, &fast_cfg(), &fast_settings());
    let rb = b.run_model(ModelKind::Bprmf, &fast_cfg(), &fast_settings());
    assert_eq!(ra.best.recall, rb.best.recall);
    assert_eq!(ra.best.ndcg, rb.best.ndcg);
}

#[test]
fn different_seeds_give_different_worlds() {
    let a = Experiment::prepare(&tiny());
    let b = Experiment::prepare(&ExperimentConfig { seed: 43, ..tiny() });
    assert_ne!(a.ckg.canonical_triples, b.ckg.canonical_triples);
}

#[test]
fn every_model_runs_end_to_end_on_the_pipeline() {
    let exp = Experiment::prepare(&tiny());
    let settings = TrainSettings {
        max_epochs: 2,
        eval_every: 2,
        patience: 0,
        k: 10,
        seed: 1,
        verbose: false,
        ..TrainSettings::default()
    };
    for kind in ModelKind::table2_order() {
        let report = exp.run_model(kind, &fast_cfg(), &settings);
        assert!(
            report.best.recall.is_finite() && report.best.recall >= 0.0,
            "{} produced bad recall",
            kind.label()
        );
    }
}

#[test]
fn recommendations_are_valid_and_ordered() {
    let exp = Experiment::prepare(&tiny());
    let model = exp.train_recommender(ModelKind::Ckat, &fast_cfg(), &fast_settings());
    for user in 0..5u32 {
        let recs = recommend_top_k(model.as_ref(), &exp.inter, user, 8);
        assert!(recs.len() <= 8);
        for w in recs.windows(2) {
            assert!(w[0].1 >= w[1].1, "not sorted");
        }
        for &(item, score) in &recs {
            assert!(!exp.inter.contains_train(user, item));
            assert!(score.is_finite());
        }
    }
}

#[test]
fn mask_ablation_keeps_split_fixed_across_variants() {
    let exp = Experiment::prepare(&tiny());
    let masks = [
        SourceMask::uig_only(),
        SourceMask { uug: true, loc: false, dkg: false, md: false },
        SourceMask::all(),
        SourceMask::all_with_noise(),
    ];
    let mut entity_counts = Vec::new();
    for mask in masks {
        let v = exp.with_mask(mask);
        assert_eq!(v.inter.test, exp.inter.test, "{}", mask.label());
        entity_counts.push(v.ckg.n_entities());
        // The variant must still train.
        let settings = TrainSettings {
            max_epochs: 1,
            eval_every: 1,
            patience: 0,
            k: 5,
            seed: 1,
            verbose: false,
            ..TrainSettings::default()
        };
        let r = v.run_model(ModelKind::Ckat, &fast_cfg(), &settings);
        assert!(r.best.recall.is_finite());
    }
    // Entity counts strictly grow as sources are added.
    assert!(entity_counts[0] < entity_counts[2]);
    assert!(entity_counts[2] < entity_counts[3]);
}

#[test]
fn evaluate_matches_trainer_reported_metrics() {
    let exp = Experiment::prepare(&tiny());
    let settings = TrainSettings {
        max_epochs: 4,
        eval_every: 4,
        patience: 0,
        k: 10,
        seed: 5,
        verbose: false,
        ..TrainSettings::default()
    };
    let ctx = exp.ctx();
    let mut model = ModelKind::Bprmf.build(&ctx, &fast_cfg());
    let report = facility_kgrec::eval::train(model.as_mut(), &ctx, &settings);
    // The final epoch was evaluated; re-evaluating now must reproduce it.
    let again = evaluate(model.as_ref(), &exp.inter, 10);
    let last_eval = report.logs.last().and_then(|l| l.eval).expect("final epoch evaluated");
    assert!((again.recall - last_eval.recall).abs() < 1e-12);
}
