//! Geodesy (GAGE-like) data discovery with a knowledge-source ablation:
//! how much do location knowledge (LOC), the domain model (DKG), and user
//! co-location (UUG) each contribute on a locality-heavy facility?
//!
//! ```sh
//! cargo run --release --example gage_discovery
//! ```

use facility_kgrec::ckat::{Experiment, ExperimentConfig};
use facility_kgrec::datagen::FacilityConfig;
use facility_kgrec::eval::TrainSettings;
use facility_kgrec::kg::SourceMask;
use facility_kgrec::models::ckat::{Aggregator, CkatConfig};
use facility_kgrec::models::ModelConfig;

fn main() {
    // Scaled-down GAGE (GPS/GNSS stations across many cities/states).
    let mut facility = FacilityConfig::gage();
    facility.n_users = 350;
    facility.n_items = 250;
    facility.n_sites = 96;
    facility.n_organizations = 24;
    facility.n_cities = 40;

    let exp = Experiment::prepare(&ExperimentConfig {
        facility,
        seed: 17,
        ..ExperimentConfig::default()
    });
    println!("GAGE-like CKG:\n{}\n", exp.stats());

    let base = ModelConfig { embed_dim: 32, ..ModelConfig::default() };
    let ckat = CkatConfig {
        layer_dims: vec![32, 16, 8],
        use_attention: true,
        aggregator: Aggregator::Concat,
        transr_dim: 32,
        margin: 1.0,
        batch_local: true,
        hub_cache: true,
        hub_percentile: 0.99,
        base,
    };
    let settings = TrainSettings {
        max_epochs: 25,
        eval_every: 5,
        patience: 2,
        k: 20,
        seed: 9,
        verbose: false,
        ..TrainSettings::default()
    };

    let masks = [
        SourceMask::uig_only(),
        SourceMask { uug: false, loc: true, dkg: false, md: false },
        SourceMask { uug: false, loc: false, dkg: true, md: false },
        SourceMask { uug: true, loc: false, dkg: false, md: false },
        SourceMask::all(),
    ];

    println!("knowledge            recall@20  ndcg@20");
    println!("-------------------  ---------  -------");
    for mask in masks {
        let variant = exp.with_mask(mask);
        let report = variant.run_ckat(&ckat, &settings);
        println!("{:<19}  {:.4}     {:.4}", mask.label(), report.best.recall, report.best.ndcg);
    }
    println!(
        "\nGAGE users follow instrument locality strongly (paper Section VI-F):\n\
         expect LOC to contribute more than DKG here."
    );
}
