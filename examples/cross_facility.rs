//! Cross-facility discovery — the extension the paper sketches but does
//! not evaluate (Section IV: "Using entity alignment, KGs from multiple
//! facilities can be consolidated. This can potentially enable
//! recommendations across multiple facilities.").
//!
//! Two facilities are simulated, their CKGs are merged by entity
//! alignment on the shared *discipline* vocabulary, and a single CKAT is
//! trained over the union. The payoff: a user who has only ever queried
//! facility A receives ranked recommendations for facility B's data
//! objects, connected through shared disciplines.
//!
//! ```sh
//! cargo run --release --example cross_facility
//! ```

use facility_kgrec::datagen::{FacilityConfig, Trace};
use facility_kgrec::eval::{train, TrainSettings};
use facility_kgrec::kg::{CkgBuilder, Id, Interactions, KnowledgeSource, SourceMask};
use facility_kgrec::models::ckat::{Aggregator, Ckat, CkatConfig};
use facility_kgrec::models::{ModelConfig, Recommender, TrainContext};
use facility_kgrec::prelude::seeded_rng;

fn small(name: &str, seed_types: usize) -> FacilityConfig {
    let mut c = FacilityConfig::tiny();
    c.name = name.into();
    c.n_users = 80;
    c.n_items = 60;
    c.n_data_types = seed_types;
    c.n_disciplines = 3;
    c
}

fn main() {
    // Two facilities with different data types but an overlapping
    // discipline space (types map to disciplines round-robin, so both
    // facilities produce data in disciplines 0..3).
    let trace_a = Trace::generate(&small("ocean", 6), 1);
    let trace_b = Trace::generate(&small("geo", 9), 2);
    let (ua, ia) = (trace_a.population.n_users(), trace_a.catalog.n_items());
    let (ub, ib) = (trace_b.population.n_users(), trace_b.catalog.n_items());

    // Merge by entity alignment: users and items get disjoint id ranges;
    // attribute entities are aligned *by name*, and we namespace
    // facility-local attributes while leaving the shared discipline
    // vocabulary un-namespaced — that is the alignment seam.
    let n_users = ua + ub;
    let n_items = ia + ib;
    let mut b = CkgBuilder::new(n_users, n_items);

    let mut rng = seeded_rng(3);
    let inter_a = trace_a.split_interactions(0.2, &mut rng);
    let inter_b = trace_b.split_interactions(0.2, &mut rng);

    let mut train_lists: Vec<Vec<Id>> = Vec::with_capacity(n_users);
    let mut test_lists: Vec<Vec<Id>> = Vec::with_capacity(n_users);
    for u in 0..ua {
        train_lists.push(inter_a.train[u].clone());
        test_lists.push(inter_a.test[u].clone());
    }
    for u in 0..ub {
        train_lists.push(inter_b.train[u].iter().map(|&i| i + ia as Id).collect());
        test_lists.push(inter_b.test[u].iter().map(|&i| i + ia as Id).collect());
    }
    let inter = Interactions::from_lists(n_items, train_lists, test_lists);
    b.add_interactions(&inter.train_pairs);

    for (prefix, trace, item_off) in [("A", &trace_a, 0), ("B", &trace_b, ia)] {
        for (i, item) in trace.catalog.items.iter().enumerate() {
            let gid = (i + item_off) as Id;
            // Facility-local site knowledge (namespaced).
            b.add_item_attribute(
                KnowledgeSource::Loc,
                "locatedAt",
                gid,
                format!("{prefix}:site:{}", item.site),
            );
            // Facility-local data type...
            b.add_item_attribute(
                KnowledgeSource::Dkg,
                "hasDataType",
                gid,
                format!("{prefix}:type:{}", item.data_type),
            );
        }
        // ...bridged into the SHARED discipline vocabulary.
        for (ty, &disc) in trace.catalog.type_discipline.iter().enumerate() {
            b.add_attribute_attribute(
                KnowledgeSource::Dkg,
                "dataDiscipline",
                format!("{prefix}:type:{ty}"),
                format!("disc:{disc}"), // no prefix: aligned across facilities
            );
        }
    }
    let ckg = b.build(SourceMask::all());
    println!("Merged cross-facility CKG:\n{}\n", facility_kgrec::kg::CkgStats::of(&ckg));

    // Train one CKAT over the union.
    let base = ModelConfig { embed_dim: 16, keep_prob: 1.0, ..ModelConfig::default() };
    let config = CkatConfig {
        layer_dims: vec![16, 8],
        use_attention: true,
        aggregator: Aggregator::Concat,
        transr_dim: 16,
        margin: 1.0,
        batch_local: true,
        hub_cache: true,
        hub_percentile: 0.99,
        base,
    };
    let ctx = TrainContext { inter: &inter, ckg: &ckg };
    let mut model = Ckat::new(&ctx, &config);
    let settings = TrainSettings {
        max_epochs: 20,
        eval_every: 5,
        patience: 0,
        k: 10,
        seed: 4,
        verbose: true,
        ..TrainSettings::default()
    };
    let report = train(&mut model, &ctx, &settings);
    println!(
        "\nUnified model: recall@10 {:.4}, ndcg@10 {:.4}",
        report.best.recall, report.best.ndcg
    );

    // Cross-facility payoff: rank facility-B items for a facility-A user.
    model.prepare_eval(&ctx);
    let user = 0u32; // a facility-A user
    let scores = model.score_items(user);
    let mut b_items: Vec<(usize, f32)> = (ia..n_items).map(|i| (i, scores[i])).collect();
    b_items.sort_unstable_by(|x, y| y.1.partial_cmp(&x.1).unwrap());
    println!("\nTop-5 facility-B data objects for facility-A user {user}:");
    for (gid, score) in b_items.into_iter().take(5) {
        let local = gid - ia;
        let m = &trace_b.catalog.items[local];
        println!(
            "  B item {local:3}  score {score:6.3}  type {} discipline {}",
            m.data_type, m.discipline
        );
    }
    println!(
        "\nThe A-user's discipline profile flows through the shared `disc:*`\n\
         entities into facility B's catalog — no A-user ever queried B."
    );
}
