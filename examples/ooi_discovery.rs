//! Ocean-observatory data discovery: train CKAT and BPRMF on an OOI-like
//! facility and compare how much the knowledge network helps.
//!
//! ```sh
//! cargo run --release --example ooi_discovery
//! ```

use facility_kgrec::ckat::{recommend_top_k, Experiment, ExperimentConfig};
use facility_kgrec::datagen::FacilityConfig;
use facility_kgrec::eval::TrainSettings;
use facility_kgrec::models::{ModelConfig, ModelKind};

fn main() {
    // A scaled-down OOI (8 research arrays, tens of sites) so the example
    // finishes in seconds; use `FacilityConfig::ooi()` for the full scale.
    let mut facility = FacilityConfig::ooi();
    facility.n_users = 200;
    facility.n_items = 150;
    facility.n_organizations = 16;
    facility.n_cities = 24;

    let exp = Experiment::prepare(&ExperimentConfig {
        facility,
        seed: 11,
        ..ExperimentConfig::default()
    });
    println!("OOI-like CKG:\n{}\n", exp.stats());

    let settings = TrainSettings {
        max_epochs: 25,
        eval_every: 5,
        patience: 2,
        k: 20,
        seed: 3,
        verbose: false,
        ..TrainSettings::default()
    };
    let cfg = ModelConfig { embed_dim: 32, ..ModelConfig::default() };

    println!("model       recall@20  ndcg@20");
    println!("----------  ---------  -------");
    let mut reports = Vec::new();
    for kind in [ModelKind::Bprmf, ModelKind::Kgcn, ModelKind::Ckat] {
        let report = exp.run_model(kind, &cfg, &settings);
        println!("{:<10}  {:.4}     {:.4}", kind.label(), report.best.recall, report.best.ndcg);
        reports.push((kind, report));
    }

    // Show what CKAT recommends to the most active user and why the
    // knowledge graph makes those items plausible.
    let model = exp.train_recommender(ModelKind::Ckat, &cfg, &settings);
    let user = exp
        .inter
        .train
        .iter()
        .enumerate()
        .max_by_key(|(_, items)| items.len())
        .map(|(u, _)| u as u32)
        .unwrap_or(0);
    let meta = &exp.trace.population.users[user as usize];
    println!(
        "\nMost active user {user}: home region {}, home site {}, preferred types {:?}",
        meta.home_region, meta.home_site, meta.pref_types
    );
    println!("Top-10 recommendations (region/type alignment with the profile shown):");
    for (item, score) in recommend_top_k(model.as_ref(), &exp.inter, user, 10) {
        let m = &exp.trace.catalog.items[item as usize];
        let region_match = if m.region == meta.home_region { "home-region" } else { "other" };
        let type_match = if meta.pref_types.contains(&m.data_type) { "pref-type" } else { "other" };
        println!(
            "  item {item:4}  score {score:7.3}  site {:3}  [{region_match}, {type_match}]",
            m.site
        );
    }
}
