//! Attention ablation on a noise-injected knowledge graph — the mechanism
//! behind Table IV: knowledge-aware attention lets CKAT down-weight
//! irrelevant (MD, metadata) edges that uniform aggregation must average
//! in.
//!
//! ```sh
//! cargo run --release --example ablation_attention
//! ```

use facility_kgrec::ckat::{Experiment, ExperimentConfig};
use facility_kgrec::datagen::FacilityConfig;
use facility_kgrec::eval::TrainSettings;
use facility_kgrec::kg::SourceMask;
use facility_kgrec::models::ckat::{Aggregator, CkatConfig};
use facility_kgrec::models::ModelConfig;

fn main() {
    let mut facility = FacilityConfig::ooi();
    facility.n_users = 200;
    facility.n_items = 150;
    facility.n_organizations = 16;

    // Include the MD noise source so there is something to down-weight.
    let exp = Experiment::prepare(&ExperimentConfig {
        facility,
        seed: 23,
        mask: SourceMask::all_with_noise(),
        ..ExperimentConfig::default()
    });
    println!("CKG with MD noise:\n{}\n", exp.stats());

    let base = ModelConfig { embed_dim: 32, ..ModelConfig::default() };
    let settings = TrainSettings {
        max_epochs: 25,
        eval_every: 5,
        patience: 2,
        k: 20,
        seed: 5,
        verbose: false,
        ..TrainSettings::default()
    };

    let variants: [(&str, bool, Aggregator); 3] = [
        ("w/  attention + concat", true, Aggregator::Concat),
        ("w/  attention + sum", true, Aggregator::Sum),
        ("w/o attention + concat", false, Aggregator::Concat),
    ];
    println!("variant                  recall@20  ndcg@20");
    println!("-----------------------  ---------  -------");
    for (label, att, agg) in variants {
        let cfg = CkatConfig {
            layer_dims: vec![32, 16, 8],
            use_attention: att,
            aggregator: agg,
            transr_dim: 32,
            margin: 1.0,
            batch_local: true,
            hub_cache: true,
            hub_percentile: 0.99,
            base: base.clone(),
        };
        let report = exp.run_ckat(&cfg, &settings);
        println!("{label:<23}  {:.4}     {:.4}", report.best.recall, report.best.ndcg);
    }
}
