//! Incremental CKG updates — addressing the limitation the paper flags in
//! Section VI-F: "when the facility adds new instruments or data objects,
//! the fine-tuning process needs to be repeated."
//!
//! The facility grows (new data objects come online, users start querying
//! them); instead of retraining CKAT from scratch, we rebuild the CKG and
//! *warm-start* from the previous model's embeddings. The demo compares
//! cold vs warm training under the same small epoch budget.
//!
//! ```sh
//! cargo run --release --example incremental_update
//! ```

use facility_kgrec::datagen::{FacilityConfig, Trace};
use facility_kgrec::eval::{evaluate, train, TrainSettings};
use facility_kgrec::kg::SourceMask;
use facility_kgrec::models::ckat::{Aggregator, Ckat, CkatConfig};
use facility_kgrec::models::{ModelConfig, Recommender, TrainContext};
use facility_kgrec::prelude::seeded_rng;

fn ckat_config() -> CkatConfig {
    let base = ModelConfig { embed_dim: 16, keep_prob: 1.0, ..ModelConfig::default() };
    CkatConfig {
        layer_dims: vec![16, 8],
        use_attention: true,
        aggregator: Aggregator::Concat,
        transr_dim: 16,
        margin: 1.0,
        batch_local: true,
        hub_cache: true,
        hub_percentile: 0.99,
        base,
    }
}

fn main() {
    // Day 0: the facility as initially deployed.
    let mut cfg0 = FacilityConfig::tiny();
    cfg0.n_users = 100;
    cfg0.n_items = 60;
    let trace0 = Trace::generate(&cfg0, 5);
    let inter0 = trace0.split_interactions(0.2, &mut seeded_rng(5));
    let mut b0 = trace0.ckg_builder(3);
    b0.add_interactions(&inter0.train_pairs);
    let ckg0 = b0.build(SourceMask::all());
    let ctx0 = TrainContext { inter: &inter0, ckg: &ckg0 };

    let mut day0 = Ckat::new(&ctx0, &ckat_config());
    let full = TrainSettings {
        max_epochs: 30,
        eval_every: 5,
        patience: 0,
        k: 10,
        seed: 1,
        verbose: false,
        ..TrainSettings::default()
    };
    let r0 = train(&mut day0, &ctx0, &full);
    println!("day 0: {} entities, recall@10 {:.4}", ckg0.n_entities(), r0.best.recall);

    // Day 1: same population, larger catalog (new deployments), new trace.
    let mut cfg1 = cfg0.clone();
    cfg1.n_items = 80; // 20 new data objects
    let trace1 = Trace::generate(&cfg1, 5); // same seed: same topology prefix
    let inter1 = trace1.split_interactions(0.2, &mut seeded_rng(6));
    let mut b1 = trace1.ckg_builder(3);
    b1.add_interactions(&inter1.train_pairs);
    let ckg1 = b1.build(SourceMask::all());
    let ctx1 = TrainContext { inter: &inter1, ckg: &ckg1 };

    // Entity alignment old → new: users keep their ids; old items keep
    // theirs; attribute entities align by name.
    let mut map: Vec<Option<usize>> = vec![None; ckg1.n_entities()];
    for (u, slot) in map.iter_mut().enumerate().take(ckg1.n_users.min(ckg0.n_users)) {
        *slot = Some(u);
    }
    for i in 0..ckg0.n_items.min(ckg1.n_items) {
        map[ckg1.n_users + i] = Some(ckg0.n_users + i);
    }
    let old_attr_idx: std::collections::HashMap<&str, usize> =
        ckg0.attr_names.iter().enumerate().map(|(a, name)| (name.as_str(), a)).collect();
    for (a, name) in ckg1.attr_names.iter().enumerate() {
        if let Some(&old_a) = old_attr_idx.get(name.as_str()) {
            map[ckg1.n_users + ckg1.n_items + a] = Some(ckg0.n_users + ckg0.n_items + old_a);
        }
    }
    let mapped = map.iter().filter(|m| m.is_some()).count();
    println!(
        "day 1: {} entities ({} aligned to day-0, {} new)",
        ckg1.n_entities(),
        mapped,
        ckg1.n_entities() - mapped
    );

    // Small update budget: 5 epochs.
    let quick = TrainSettings {
        max_epochs: 5,
        eval_every: 5,
        patience: 0,
        k: 10,
        seed: 2,
        verbose: false,
        ..TrainSettings::default()
    };

    let mut cold = Ckat::new(&ctx1, &ckat_config());
    let rc = train(&mut cold, &ctx1, &quick);

    let mut warm = Ckat::new_warm(&ctx1, &ckat_config(), &day0, &map);
    let rw = train(&mut warm, &ctx1, &quick);

    // Also evaluate the un-updated day-0 weights transplanted onto the new
    // graph (zero update epochs).
    let mut transplant = Ckat::new_warm(&ctx1, &ckat_config(), &day0, &map);
    transplant.prepare_eval(&ctx1);
    let rt = evaluate(&transplant, &inter1, 10);

    println!("\nafter the catalog grows (5 update epochs):");
    println!("  transplant only (0 epochs): recall@10 {:.4}", rt.recall);
    println!("  cold start      (5 epochs): recall@10 {:.4}", rc.best.recall);
    println!("  warm start      (5 epochs): recall@10 {:.4}", rw.best.recall);
    println!(
        "\nwarm start recovers {:.0}% of the day-0 quality with a 6x smaller\n\
         epoch budget — the fine-tuning the paper calls out no longer starts\n\
         from zero.",
        100.0 * rw.best.recall / r0.best.recall.max(1e-9)
    );
}
