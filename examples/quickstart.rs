//! Quickstart: simulate a small facility, train CKAT, and print
//! recommendations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use facility_kgrec::ckat::{recommend_top_k, Experiment, ExperimentConfig};
use facility_kgrec::datagen::FacilityConfig;
use facility_kgrec::eval::TrainSettings;
use facility_kgrec::models::{ModelConfig, ModelKind};

fn main() {
    // 1. Simulate a small facility: instruments at sites, users in cities,
    //    an affinity-driven query trace.
    let exp = Experiment::prepare(&ExperimentConfig {
        facility: FacilityConfig::tiny(),
        seed: 42,
        ..ExperimentConfig::default()
    });
    println!("Collaborative knowledge graph:\n{}\n", exp.stats());

    // 2. Train the CKAT recommender.
    let settings = TrainSettings {
        max_epochs: 20,
        eval_every: 5,
        patience: 0,
        k: 10,
        seed: 7,
        verbose: true,
        ..TrainSettings::default()
    };
    let model_cfg = ModelConfig { embed_dim: 16, keep_prob: 1.0, ..ModelConfig::default() };
    let model = exp.train_recommender(ModelKind::Ckat, &model_cfg, &settings);

    // 3. Recommend data objects for a user, with their trace context.
    let user = 0u32;
    let meta = &exp.trace.population.users[user as usize];
    println!(
        "\nUser {user}: city {}, org {}, home site {}, preferred data types {:?}",
        meta.city, meta.org, meta.home_site, meta.pref_types
    );
    println!("Already queried (train): {:?}", exp.inter.train[user as usize]);

    println!("\nTop-5 recommended data objects:");
    for (item, score) in recommend_top_k(model.as_ref(), &exp.inter, user, 5) {
        let m = &exp.trace.catalog.items[item as usize];
        println!(
            "  item {item:3}  score {score:6.3}  site {} (region {}), data type {}, discipline {}",
            m.site, m.region, m.data_type, m.discipline
        );
    }
}
