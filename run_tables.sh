#!/bin/sh
# Regenerate every table/figure of the paper into results/.
# Usage: ./run_tables.sh [--fast|--paper] — flags forwarded to each binary.
set -e
cargo build --release -p facility-bench
mkdir -p results
for t in table1 table2 table3 table4 table5 fig5; do
  echo "== $t =="
  ./target/release/$t "$@" > "results/$t.txt" 2> "results/$t.log"
  cat "results/$t.txt"
done
./target/release/fig3 "$@" > results/fig3.csv 2> results/fig3_summary.txt
./target/release/fig4 "$@" > results/fig4.csv 2> results/fig4_summary.txt
echo "== figures =="
cat results/fig3_summary.txt results/fig4_summary.txt
